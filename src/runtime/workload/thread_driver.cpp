#include "runtime/workload/thread_driver.hpp"

#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "apps/kv_store.hpp"
#include "common/rng.hpp"
#include "crypto/keyring.hpp"
#include "crypto/x25519.hpp"
#include "net/thread_net.hpp"
#include "pbft/client.hpp"
#include "pbft/replica.hpp"
#include "splitbft/client.hpp"
#include "splitbft/replica.hpp"
#include "tee/attestation.hpp"
#include "tee/sealing.hpp"

namespace sbft::runtime::workload {
namespace {

[[nodiscard]] Micros now_us() {
  static const SteadyClock clock;
  return clock.now();
}

/// One client's pacing state inside a station.
template <typename Engine>
struct StationClient {
  StationClient(Engine e, const Options& options, std::uint64_t seed)
      : engine(std::move(e)),
        gen(options, seed),
        rng(seed ^ 0x10adc11e47ULL) {}

  Engine engine;
  OpGenerator gen;
  Rng rng;
  Micros inflight_from{0};
  /// Closed loop: pending think-time release (0 = none). Open loop: the
  /// next Poisson arrival.
  Micros due_at{0};
  // open-loop waiting arrivals
  std::deque<std::pair<Micros, GeneratedOp>> queued;
};

/// A station multiplexes many clients onto ONE ThreadNetwork endpoint
/// group: replies arrive on the station's consumer thread, timers fire
/// from the ticker thread; the station mutex serializes both.
template <typename Engine>
class Station {
 public:
  Station(const Options& options, net::ThreadNetwork& net,
          LatencyHistogram& hist, const std::atomic<bool>& measuring)
      : options_(options), net_(net), hist_(hist), measuring_(measuring) {}

  void add_client(ClientId id, Engine engine) {
    clients_.emplace(id, StationClient<Engine>(std::move(engine), options_,
                                               options_.seed * 1'000'003 + id));
  }

  /// Sums the clients' read fast-path counters (post-run reporting).
  void accumulate_read_stats(std::uint64_t& fast_reads,
                             std::uint64_t& read_fallbacks) {
    const std::scoped_lock lock(mutex_);
    for (const auto& [id, c] : clients_) {
      fast_reads += c.engine.fast_reads();
      read_fallbacks += c.engine.read_fallbacks();
    }
  }

  [[nodiscard]] std::vector<principal::Id> principals() const {
    std::vector<principal::Id> ids;
    ids.reserve(clients_.size());
    for (const auto& [id, client] : clients_) {
      ids.push_back(principal::client(id));
    }
    return ids;
  }

  void start(Micros now) {
    const std::scoped_lock lock(mutex_);
    for (auto& [id, c] : clients_) {
      if (options_.mode == LoadMode::Open) {
        c.due_at = now + std::max<Micros>(
                             1, exponential_us(c.rng, options_.interarrival_us));
      } else {
        submit(c, c.gen.next(), now, now);
      }
    }
  }

  void deliver(net::Envelope env) {
    const Micros now = now_us();
    // principal::client is the identity mapping: the dst IS the client id.
    const auto target = static_cast<ClientId>(env.dst);
    std::vector<net::Envelope> outs;
    {
      const std::scoped_lock lock(mutex_);
      const auto it = clients_.find(target);
      if (it == clients_.end()) return;
      auto& c = it->second;
      if (env.type == pbft::tag(pbft::MsgType::Reply) ||
          env.type == pbft::tag(pbft::MsgType::ReadReply)) {
        // `outs` carries the ordered re-broadcast on a fast-read fallback.
        if (c.engine.on_reply(env, now, outs)) completed(c, now);
      } else if constexpr (requires(Engine& e, const net::Envelope& v,
                                    Micros t) { e.on_message(v, t); }) {
        outs = c.engine.on_message(env, now);
      }
    }
    for (auto& out : outs) net_.send(std::move(out));
  }

  /// Ticker entry: due submissions, open-loop arrivals, engine retries.
  void tick(Micros now) {
    std::vector<net::Envelope> outs;
    {
      const std::scoped_lock lock(mutex_);
      for (auto& [id, c] : clients_) {
        if (options_.mode == LoadMode::Open) {
          while (c.due_at != 0 && now >= c.due_at) {
            on_arrival(c, c.due_at);
            c.due_at += std::max<Micros>(
                1, exponential_us(c.rng, options_.interarrival_us));
          }
        } else if (c.due_at != 0 && now >= c.due_at) {
          c.due_at = 0;
          submit(c, c.gen.next(), now, now);
        }
        auto retries = c.engine.tick(now);
        outs.insert(outs.end(), std::make_move_iterator(retries.begin()),
                    std::make_move_iterator(retries.end()));
      }
    }
    for (auto& out : outs) net_.send(std::move(out));
  }

 private:
  static constexpr std::size_t kMaxQueued = 256;

  void submit(StationClient<Engine>& c, GeneratedOp op, Micros measured_from,
              Micros now) {
    c.inflight_from = measured_from;
    // Sending under the station lock is deadlock-free: ThreadNetwork
    // queue mutexes are leaves, and no endpoint handler takes another
    // station's lock.
    for (auto& env : c.engine.submit(std::move(op.op), now, op.read_only)) {
      net_.send(std::move(env));
    }
  }

  void completed(StationClient<Engine>& c, Micros now) {
    if (measuring_.load(std::memory_order_relaxed)) {
      hist_.record(now - c.inflight_from);
    }
    if (options_.mode == LoadMode::Open) {
      if (!c.queued.empty()) {
        auto [arrived, op] = std::move(c.queued.front());
        c.queued.pop_front();
        submit(c, std::move(op), arrived, now);
      }
      return;
    }
    const Micros think = exponential_us(c.rng, options_.think_time_us);
    if (think == 0) {
      submit(c, c.gen.next(), now, now);
    } else {
      c.due_at = now + think;
    }
  }

  void on_arrival(StationClient<Engine>& c, Micros arrived) {
    if (!c.engine.in_flight()) {
      submit(c, c.gen.next(), arrived, now_us());
    } else if (c.queued.size() < kMaxQueued) {
      c.queued.emplace_back(arrived, c.gen.next());
    }
    // else: shed load (open-loop back-pressure)
  }

  const Options& options_;
  net::ThreadNetwork& net_;
  LatencyHistogram& hist_;
  const std::atomic<bool>& measuring_;
  std::mutex mutex_;
  std::unordered_map<ClientId, StationClient<Engine>> clients_;
};

/// Shared run skeleton: `replica_tick(now)` drives protocol timers,
/// stations drive client pacing; measurement is quartered for the
/// sustained check, exactly as in the simulator driver.
template <typename Engine, typename ReplicaTickFn>
Report drive(const Options& options, net::ThreadNetwork& net,
             std::vector<std::unique_ptr<Station<Engine>>>& stations,
             LatencyHistogram& hist, std::atomic<bool>& measuring,
             ReplicaTickFn&& replica_tick) {
  for (auto& station : stations) {
    Station<Engine>* s = station.get();
    net.register_endpoint_group(
        s->principals(), [s](net::Envelope env) { s->deliver(std::move(env)); });
  }

  std::atomic<bool> quit{false};
  std::thread ticker([&] {
    while (!quit.load(std::memory_order_relaxed)) {
      const Micros now = now_us();
      replica_tick(now);
      for (auto& station : stations) station->tick(now);
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  const Micros start = now_us();
  for (auto& station : stations) station->start(start);
  std::this_thread::sleep_for(std::chrono::microseconds(options.warmup_us));

  measuring.store(true);
  bool sustained = true;
  std::uint64_t prev = hist.count();
  for (int quarter = 0; quarter < 4; ++quarter) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(options.measure_us / 4));
    const std::uint64_t count = hist.count();
    if (count == prev) sustained = false;
    prev = count;
  }
  measuring.store(false);

  quit.store(true);
  ticker.join();
  net.shutdown();

  Report report;
  summarize_into(hist, options.measure_us, report);
  report.sustained = sustained && report.completed_ops > 0;
  for (auto& station : stations) {
    station->accumulate_read_stats(report.fast_reads, report.read_fallbacks);
  }
  return report;
}

[[nodiscard]] std::size_t station_count(const Options& options) {
  const std::size_t hw = std::max(2u, std::thread::hardware_concurrency());
  return std::max<std::size_t>(
      1, std::min<std::size_t>({hw / 2, 8, options.clients}));
}

[[nodiscard]] Report run_pbft(const Options& options) {
  const pbft::Config config = options.protocol;
  crypto::KeyRing keyring(crypto::Scheme::HmacShared,
                          options.seed ^ 0x6b657972696e67ULL);
  pbft::ClientDirectory directory(0x5ec7e7);
  for (ReplicaId r = 0; r < config.n; ++r) {
    keyring.add_principal(principal::pbft_replica(r));
  }
  const auto verifier = keyring.verifier();

  struct LockedReplica {
    std::mutex mutex;
    std::unique_ptr<pbft::Replica> replica;
  };
  std::vector<std::unique_ptr<LockedReplica>> replicas;
  for (ReplicaId r = 0; r < config.n; ++r) {
    auto locked = std::make_unique<LockedReplica>();
    locked->replica = std::make_unique<pbft::Replica>(
        config, r, keyring.signer(principal::pbft_replica(r)), verifier,
        directory, [] { return std::make_unique<apps::KvStore>(); },
        /*auth=*/nullptr, runner::make_runner(options.workers));
    replicas.push_back(std::move(locked));
  }

  net::ThreadNetwork net;
  LatencyHistogram hist;
  std::atomic<bool> measuring{false};

  for (ReplicaId r = 0; r < config.n; ++r) {
    LockedReplica* locked = replicas[r].get();
    net.register_endpoint(
        principal::pbft_replica(r), [locked, &net](net::Envelope env) {
          std::vector<net::Envelope> outs;
          {
            const std::scoped_lock lock(locked->mutex);
            outs = locked->replica->handle(env, now_us());
          }
          for (auto& out : outs) net.send(std::move(out));
        });
  }

  using S = Station<pbft::Client>;
  std::vector<std::unique_ptr<S>> stations;
  const std::size_t n_stations = station_count(options);
  for (std::size_t s = 0; s < n_stations; ++s) {
    stations.push_back(std::make_unique<S>(options, net, hist, measuring));
  }
  for (std::uint32_t i = 0; i < options.clients; ++i) {
    const ClientId id = kFirstClientId + i;
    stations[i % n_stations]->add_client(
        id, pbft::Client(config, id, directory, /*retry=*/2'000'000));
  }

  Report report = drive<pbft::Client>(
      options, net, stations, hist, measuring, [&](Micros now) {
        for (auto& locked : replicas) {
          std::vector<net::Envelope> outs;
          {
            const std::scoped_lock lock(locked->mutex);
            outs = locked->replica->tick(now);
          }
          for (auto& out : outs) net.send(std::move(out));
        }
      });
  for (auto& locked : replicas) {
    report.admission_rejects += locked->replica->admission_rejects();
  }
  return report;
}

[[nodiscard]] Report run_splitbft(const Options& options) {
  const pbft::Config config = options.protocol;
  crypto::KeyRing keyring(crypto::Scheme::HmacShared,
                          options.seed ^ 0x5b5f7b657972ULL);
  pbft::ClientDirectory directory(0x5ec7e7);
  tee::AttestationService attestation(options.seed ^ 0xa77e57ULL);
  tee::SealingService sealing(options.seed ^ 0x5ea1ULL);
  Rng rng(options.seed ^ 0x5b5f636c7573ULL);
  crypto::Key32 exec_group_key;
  for (auto& b : exec_group_key) b = static_cast<std::uint8_t>(rng.next_u64());

  for (ReplicaId r = 0; r < config.n; ++r) {
    for (const Compartment c :
         {Compartment::Preparation, Compartment::Confirmation,
          Compartment::Execution}) {
      keyring.add_principal(principal::enclave({r, c}));
    }
  }

  splitbft::ReplicaOptions replica_options;
  replica_options.config = config;
  // Simulation-mode cost model: the threaded driver measures the software
  // stack itself; burning synthetic SGX crossing delays as real CPU time
  // would only measure the cost model.
  replica_options.cost_model = tee::CostModel::simulation();
  replica_options.charge_real_time = false;
  replica_options.exec_workers = options.workers;

  struct LockedReplica {
    std::mutex mutex;
    std::shared_ptr<splitbft::SplitbftReplica> replica;
  };
  std::vector<std::unique_ptr<LockedReplica>> replicas;
  for (ReplicaId r = 0; r < config.n; ++r) {
    auto locked = std::make_unique<LockedReplica>();
    locked->replica = std::make_shared<splitbft::SplitbftReplica>(
        replica_options, r, keyring, attestation, sealing, exec_group_key,
        crypto::x25519_keygen(rng),
        splitbft::plain_app([] { return std::make_unique<apps::KvStore>(); }));
    replicas.push_back(std::move(locked));
  }

  net::ThreadNetwork net;
  LatencyHistogram hist;
  std::atomic<bool> measuring{false};

  for (ReplicaId r = 0; r < config.n; ++r) {
    LockedReplica* locked = replicas[r].get();
    // One consumer for all four principals: the broker behind them is one
    // serial event loop anyway.
    net.register_endpoint_group(
        {principal::splitbft_env(r),
         principal::enclave({r, Compartment::Preparation}),
         principal::enclave({r, Compartment::Confirmation}),
         principal::enclave({r, Compartment::Execution})},
        [locked, &net](net::Envelope env) {
          std::vector<net::Envelope> outs;
          {
            const std::scoped_lock lock(locked->mutex);
            outs = locked->replica->handle(env, now_us());
          }
          for (auto& out : outs) net.send(std::move(out));
        });
  }

  splitbft::SplitClient::TrustAnchors anchors;
  anchors.attestation_root = attestation.root_public_key();

  using S = Station<splitbft::SplitClient>;
  std::vector<std::unique_ptr<S>> stations;
  const std::size_t n_stations = station_count(options);
  for (std::size_t s = 0; s < n_stations; ++s) {
    stations.push_back(std::make_unique<S>(options, net, hist, measuring));
  }
  for (std::uint32_t i = 0; i < options.clients; ++i) {
    const ClientId id = kFirstClientId + i;
    splitbft::SplitClient engine(config, id, directory, anchors, options.seed,
                                 /*retry=*/2'000'000);
    // Out-of-band session provisioning, as in the virtual-time benchmarks.
    const crypto::Key32 session = session_key(options.seed, id);
    engine.adopt_session(session);
    for (ReplicaId r = 0; r < config.n; ++r) {
      replicas[r]->replica->exec_mutable().install_session(id, session);
    }
    stations[i % n_stations]->add_client(id, std::move(engine));
  }

  Report report = drive<splitbft::SplitClient>(
      options, net, stations, hist, measuring, [&](Micros now) {
        for (auto& locked : replicas) {
          std::vector<net::Envelope> outs;
          {
            const std::scoped_lock lock(locked->mutex);
            outs = locked->replica->tick(now);
          }
          for (auto& out : outs) net.send(std::move(out));
        }
      });
  for (auto& locked : replicas) {
    report.admission_rejects += locked->replica->broker().admission_rejects();
  }
  return report;
}

}  // namespace

Report run_thread_workload(const Options& options) {
  return options.stack == Stack::Pbft ? run_pbft(options)
                                      : run_splitbft(options);
}

}  // namespace sbft::runtime::workload
