#include "runtime/workload/thread_driver.hpp"

#include "runtime/workload/station.hpp"

#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "apps/kv_store.hpp"
#include "common/rng.hpp"
#include "crypto/keyring.hpp"
#include "crypto/x25519.hpp"
#include "net/thread_net.hpp"
#include "pbft/client.hpp"
#include "pbft/replica.hpp"
#include "splitbft/client.hpp"
#include "splitbft/replica.hpp"
#include "tee/attestation.hpp"
#include "tee/sealing.hpp"

namespace sbft::runtime::workload {
namespace {

[[nodiscard]] Micros now_us() {
  static const SteadyClock clock;
  return clock.now();
}

[[nodiscard]] Report run_pbft(const Options& options) {
  const pbft::Config config = options.protocol;
  crypto::KeyRing keyring(crypto::Scheme::HmacShared,
                          options.seed ^ 0x6b657972696e67ULL);
  pbft::ClientDirectory directory(0x5ec7e7);
  for (ReplicaId r = 0; r < config.n; ++r) {
    keyring.add_principal(principal::pbft_replica(r));
  }
  const auto verifier = keyring.verifier();

  struct LockedReplica {
    std::mutex mutex;
    std::unique_ptr<pbft::Replica> replica;
  };
  std::vector<std::unique_ptr<LockedReplica>> replicas;
  for (ReplicaId r = 0; r < config.n; ++r) {
    auto locked = std::make_unique<LockedReplica>();
    locked->replica = std::make_unique<pbft::Replica>(
        config, r, keyring.signer(principal::pbft_replica(r)), verifier,
        directory, [] { return std::make_unique<apps::KvStore>(); },
        /*auth=*/nullptr, runner::make_runner(options.workers));
    replicas.push_back(std::move(locked));
  }

  net::ThreadNetwork net;
  LatencyHistogram hist;
  std::atomic<bool> measuring{false};

  for (ReplicaId r = 0; r < config.n; ++r) {
    LockedReplica* locked = replicas[r].get();
    net.register_endpoint(
        principal::pbft_replica(r), [locked, &net](net::Envelope env) {
          std::vector<net::Envelope> outs;
          {
            const std::scoped_lock lock(locked->mutex);
            outs = locked->replica->handle(env, now_us());
          }
          for (auto& out : outs) net.send(std::move(out));
        });
  }

  using S = Station<pbft::Client, net::ThreadNetwork>;
  std::vector<std::unique_ptr<S>> stations;
  const std::size_t n_stations = station_count(options);
  for (std::size_t s = 0; s < n_stations; ++s) {
    stations.push_back(std::make_unique<S>(options, net, hist, measuring));
  }
  for (std::uint32_t i = 0; i < options.clients; ++i) {
    const ClientId id = kFirstClientId + i;
    stations[i % n_stations]->add_client(
        id, pbft::Client(config, id, directory, /*retry=*/2'000'000));
  }

  Report report = drive<pbft::Client, net::ThreadNetwork>(
      options, net, stations, hist, measuring, [&](Micros now) {
        for (auto& locked : replicas) {
          std::vector<net::Envelope> outs;
          {
            const std::scoped_lock lock(locked->mutex);
            outs = locked->replica->tick(now);
          }
          for (auto& out : outs) net.send(std::move(out));
        }
      });
  for (auto& locked : replicas) {
    report.admission_rejects += locked->replica->admission_rejects();
  }
  return report;
}

[[nodiscard]] Report run_splitbft(const Options& options) {
  const pbft::Config config = options.protocol;
  crypto::KeyRing keyring(crypto::Scheme::HmacShared,
                          options.seed ^ 0x5b5f7b657972ULL);
  pbft::ClientDirectory directory(0x5ec7e7);
  tee::AttestationService attestation(options.seed ^ 0xa77e57ULL);
  tee::SealingService sealing(options.seed ^ 0x5ea1ULL);
  Rng rng(options.seed ^ 0x5b5f636c7573ULL);
  crypto::Key32 exec_group_key;
  for (auto& b : exec_group_key) b = static_cast<std::uint8_t>(rng.next_u64());

  for (ReplicaId r = 0; r < config.n; ++r) {
    for (const Compartment c :
         {Compartment::Preparation, Compartment::Confirmation,
          Compartment::Execution}) {
      keyring.add_principal(principal::enclave({r, c}));
    }
  }

  splitbft::ReplicaOptions replica_options;
  replica_options.config = config;
  // Simulation-mode cost model: the threaded driver measures the software
  // stack itself; burning synthetic SGX crossing delays as real CPU time
  // would only measure the cost model.
  replica_options.cost_model = tee::CostModel::simulation();
  replica_options.charge_real_time = false;
  replica_options.exec_workers = options.workers;

  struct LockedReplica {
    std::mutex mutex;
    std::shared_ptr<splitbft::SplitbftReplica> replica;
  };
  std::vector<std::unique_ptr<LockedReplica>> replicas;
  for (ReplicaId r = 0; r < config.n; ++r) {
    auto locked = std::make_unique<LockedReplica>();
    locked->replica = std::make_shared<splitbft::SplitbftReplica>(
        replica_options, r, keyring, attestation, sealing, exec_group_key,
        crypto::x25519_keygen(rng),
        splitbft::plain_app([] { return std::make_unique<apps::KvStore>(); }));
    replicas.push_back(std::move(locked));
  }

  net::ThreadNetwork net;
  LatencyHistogram hist;
  std::atomic<bool> measuring{false};

  for (ReplicaId r = 0; r < config.n; ++r) {
    LockedReplica* locked = replicas[r].get();
    // One consumer for all four principals: the broker behind them is one
    // serial event loop anyway.
    net.register_endpoint_group(
        {principal::splitbft_env(r),
         principal::enclave({r, Compartment::Preparation}),
         principal::enclave({r, Compartment::Confirmation}),
         principal::enclave({r, Compartment::Execution})},
        [locked, &net](net::Envelope env) {
          std::vector<net::Envelope> outs;
          {
            const std::scoped_lock lock(locked->mutex);
            outs = locked->replica->handle(env, now_us());
          }
          for (auto& out : outs) net.send(std::move(out));
        });
  }

  splitbft::SplitClient::TrustAnchors anchors;
  anchors.attestation_root = attestation.root_public_key();

  using S = Station<splitbft::SplitClient, net::ThreadNetwork>;
  std::vector<std::unique_ptr<S>> stations;
  const std::size_t n_stations = station_count(options);
  for (std::size_t s = 0; s < n_stations; ++s) {
    stations.push_back(std::make_unique<S>(options, net, hist, measuring));
  }
  for (std::uint32_t i = 0; i < options.clients; ++i) {
    const ClientId id = kFirstClientId + i;
    splitbft::SplitClient engine(config, id, directory, anchors, options.seed,
                                 /*retry=*/2'000'000);
    // Out-of-band session provisioning, as in the virtual-time benchmarks.
    const crypto::Key32 session = session_key(options.seed, id);
    engine.adopt_session(session);
    for (ReplicaId r = 0; r < config.n; ++r) {
      replicas[r]->replica->exec_mutable().install_session(id, session);
    }
    stations[i % n_stations]->add_client(id, std::move(engine));
  }

  Report report = drive<splitbft::SplitClient, net::ThreadNetwork>(
      options, net, stations, hist, measuring, [&](Micros now) {
        for (auto& locked : replicas) {
          std::vector<net::Envelope> outs;
          {
            const std::scoped_lock lock(locked->mutex);
            outs = locked->replica->tick(now);
          }
          for (auto& out : outs) net.send(std::move(out));
        }
      });
  for (auto& locked : replicas) {
    report.admission_rejects += locked->replica->broker().admission_rejects();
  }
  return report;
}

}  // namespace

Report run_thread_workload(const Options& options) {
  return options.stack == Stack::Pbft ? run_pbft(options)
                                      : run_splitbft(options);
}

}  // namespace sbft::runtime::workload
