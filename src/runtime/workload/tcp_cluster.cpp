#include "runtime/workload/tcp_cluster.hpp"

#include <chrono>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include "apps/kv_store.hpp"
#include "common/rng.hpp"
#include "crypto/keyring.hpp"
#include "crypto/x25519.hpp"
#include "pbft/client.hpp"
#include "pbft/replica.hpp"
#include "runtime/runner/runner.hpp"
#include "runtime/workload/station.hpp"
#include "shard/router.hpp"
#include "splitbft/client.hpp"
#include "splitbft/replica.hpp"
#include "tee/attestation.hpp"
#include "tee/sealing.hpp"

namespace sbft::runtime::workload {

namespace {

// Key-derivation offsets shared with the threaded driver: every process of
// a deployment reconstructs the SAME keyring/attestation/group-key material
// from the workload seed, replacing the in-process sharing the thread
// driver gets for free.
constexpr std::uint64_t kPbftKeyringSalt = 0x6b657972696e67ULL;
constexpr std::uint64_t kSplitKeyringSalt = 0x5b5f7b657972ULL;
constexpr std::uint64_t kAttestationSalt = 0xa77e57ULL;
constexpr std::uint64_t kSealingSalt = 0x5ea1ULL;
constexpr std::uint64_t kClusterRngSalt = 0x5b5f636c7573ULL;
constexpr std::uint64_t kDirectorySeed = 0x5ec7e7;

}  // namespace

std::uint32_t ClusterTopology::node_of(principal::Id id) const noexcept {
  if (id >= kFirstClientId) {
    return replicas +
           static_cast<std::uint32_t>((id - kFirstClientId) % loadgens);
  }
  if (id >= principal::splitbft_env(0)) {
    return static_cast<std::uint32_t>(id - principal::splitbft_env(0));
  }
  if (id >= principal::enclave({0, Compartment::Preparation}) &&
      id < principal::hybrid_replica(0)) {
    return static_cast<std::uint32_t>(
        (id - principal::enclave({0, Compartment::Preparation})) /
        kNumCompartments);
  }
  if (id >= principal::pbft_replica(0)) {
    return static_cast<std::uint32_t>(id - principal::pbft_replica(0));
  }
  return 0;
}

net::TcpTransport::RouteFn ClusterTopology::route() const {
  const ClusterTopology copy{replicas, loadgens, {}};
  return [copy](principal::Id id) { return copy.node_of(id); };
}

std::unique_ptr<net::TcpTransport> ClusterTopology::make_transport(
    std::uint32_t node, net::TcpTransport::Options options) const {
  options.listen_addr = addrs.at(node);
  if (options.state_transfer_types.empty()) {
    // Classify recovery traffic for TransportStats (both stacks use the
    // PBFT state-transfer message family).
    options.state_transfer_types = {
        pbft::tag(pbft::MsgType::StateRequest),
        pbft::tag(pbft::MsgType::StateResponse),
        pbft::tag(pbft::MsgType::StateChunkRequest),
        pbft::tag(pbft::MsgType::StateChunkResponse)};
  }
  auto transport =
      std::make_unique<net::TcpTransport>(node, std::move(options), route());
  for (std::uint32_t other = 0; other < nodes(); ++other) {
    if (other != node) transport->add_peer(other, addrs.at(other));
  }
  return transport;
}

// ------------------------------------------------------------ ReplicaNode

struct ReplicaNode::Impl {
  std::mutex mutex;
  std::unique_ptr<pbft::Replica> pbft;
  std::shared_ptr<splitbft::SplitbftReplica> split;

  [[nodiscard]] std::vector<net::Envelope> handle(const net::Envelope& env,
                                                  Micros now) {
    const std::scoped_lock lock(mutex);
    return pbft ? pbft->handle(env, now) : split->handle(env, now);
  }
  [[nodiscard]] std::vector<net::Envelope> tick(Micros now) {
    const std::scoped_lock lock(mutex);
    return pbft ? pbft->tick(now) : split->tick(now);
  }
};

ReplicaNode::ReplicaNode(const Options& options,
                         const ClusterTopology& topology, ReplicaId replica,
                         net::TcpTransport::Options transport_options)
    : options_(options),
      topology_(topology),
      replica_(replica),
      transport_(topology.make_transport(replica, std::move(transport_options))),
      impl_(std::make_unique<Impl>()) {
  const pbft::Config config = options_.protocol;
  const pbft::ClientDirectory directory(kDirectorySeed);

  if (options_.stack == Stack::Pbft) {
    crypto::KeyRing keyring(crypto::Scheme::HmacShared,
                            options_.seed ^ kPbftKeyringSalt);
    for (ReplicaId r = 0; r < config.n; ++r) {
      keyring.add_principal(principal::pbft_replica(r));
    }
    impl_->pbft = std::make_unique<pbft::Replica>(
        config, replica_, keyring.signer(principal::pbft_replica(replica_)),
        keyring.verifier(), directory,
        [] { return std::make_unique<apps::KvStore>(); },
        /*auth=*/nullptr, runner::make_runner(options_.workers));
    return;
  }

  crypto::KeyRing keyring(crypto::Scheme::HmacShared,
                          options_.seed ^ kSplitKeyringSalt);
  tee::AttestationService attestation(options_.seed ^ kAttestationSalt);
  tee::SealingService sealing(options_.seed ^ kSealingSalt);
  Rng rng(options_.seed ^ kClusterRngSalt);
  crypto::Key32 exec_group_key;
  for (auto& b : exec_group_key) b = static_cast<std::uint8_t>(rng.next_u64());

  for (ReplicaId r = 0; r < config.n; ++r) {
    for (const Compartment c :
         {Compartment::Preparation, Compartment::Confirmation,
          Compartment::Execution}) {
      keyring.add_principal(principal::enclave({r, c}));
    }
  }

  splitbft::ReplicaOptions replica_options;
  replica_options.config = config;
  replica_options.cost_model = tee::CostModel::simulation();
  replica_options.charge_real_time = false;
  replica_options.exec_workers = options_.workers;

  // The thread driver draws every replica's DH key from ONE rng stream;
  // replay that stream so replica r's key is identical in every process.
  crypto::Key32 dh_secret{};
  for (ReplicaId r = 0; r <= replica_; ++r) {
    dh_secret = crypto::x25519_keygen(rng);
  }
  impl_->split = std::make_shared<splitbft::SplitbftReplica>(
      replica_options, replica_, keyring, attestation, sealing, exec_group_key,
      dh_secret,
      splitbft::plain_app([] { return std::make_unique<apps::KvStore>(); }));

  // Out-of-band session provisioning (see workload::session_key): install
  // every expected client's key, mirroring the in-process drivers. The
  // extra ids past `clients` cover the per-loadgen audit verifiers a
  // sharded run appends after the load stops.
  for (std::uint32_t i = 0; i < options_.clients + 2 * topology_.loadgens;
       ++i) {
    const ClientId id = kFirstClientId + i;
    impl_->split->exec_mutable().install_session(
        id, session_key(options_.seed, id));
  }
}

ReplicaNode::~ReplicaNode() { stop(); }

bool ReplicaNode::start() {
  if (running_.exchange(true)) return true;
  Impl* impl = impl_.get();
  net::TcpTransport* transport = transport_.get();
  const auto handler = [impl, transport](net::Envelope env) {
    auto outs = impl->handle(env, wall_clock_us());
    for (auto& out : outs) transport->send(std::move(out));
  };
  if (options_.stack == Stack::Pbft) {
    transport_->register_endpoint(principal::pbft_replica(replica_), handler);
  } else {
    transport_->register_endpoint_group(
        {principal::splitbft_env(replica_),
         principal::enclave({replica_, Compartment::Preparation}),
         principal::enclave({replica_, Compartment::Confirmation}),
         principal::enclave({replica_, Compartment::Execution})},
        handler);
  }
  if (!transport_->start()) {
    running_.store(false);
    return false;
  }
  ticker_ = std::thread([this] { ticker_main(); });
  return true;
}

void ReplicaNode::ticker_main() {
  while (running_.load(std::memory_order_relaxed)) {
    auto outs = impl_->tick(wall_clock_us());
    for (auto& out : outs) transport_->send(std::move(out));
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
}

void ReplicaNode::stop() {
  if (!running_.exchange(false)) return;
  if (ticker_.joinable()) ticker_.join();
  transport_->shutdown();
}

std::uint64_t ReplicaNode::admission_rejects() const {
  const std::scoped_lock lock(impl_->mutex);
  return impl_->pbft ? impl_->pbft->admission_rejects()
                     : impl_->split->broker().admission_rejects();
}

SeqNum ReplicaNode::last_executed() const {
  const std::scoped_lock lock(impl_->mutex);
  return impl_->pbft ? impl_->pbft->last_executed()
                     : impl_->split->exec().last_executed();
}

SeqNum ReplicaNode::last_stable() const {
  const std::scoped_lock lock(impl_->mutex);
  return impl_->pbft ? impl_->pbft->last_stable()
                     : impl_->split->exec().last_stable();
}

bool ReplicaNode::awaiting_state() const {
  const std::scoped_lock lock(impl_->mutex);
  return impl_->pbft ? impl_->pbft->awaiting_state()
                     : impl_->split->exec().awaiting_state();
}

pbft::StateTransferStats ReplicaNode::state_transfer_stats() const {
  const std::scoped_lock lock(impl_->mutex);
  return impl_->pbft ? impl_->pbft->state_transfer_stats()
                     : impl_->split->exec().state_transfer_stats();
}

// -------------------------------------------------------------- loadgen

namespace {

template <typename Engine, typename MakeEngine>
Report run_loadgen(const Options& options, const ClusterTopology& topology,
                   net::TcpTransport& transport, std::uint32_t loadgen_index,
                   MakeEngine&& make_engine) {
  LatencyHistogram hist;
  std::atomic<bool> measuring{false};

  using S = Station<Engine, net::TcpTransport>;
  std::vector<std::unique_ptr<S>> stations;
  const std::size_t n_stations = station_count(options);
  for (std::size_t s = 0; s < n_stations; ++s) {
    stations.push_back(
        std::make_unique<S>(options, transport, hist, measuring));
  }
  std::size_t local = 0;
  for (std::uint32_t i = 0; i < options.clients; ++i) {
    if (i % topology.loadgens != loadgen_index) continue;
    const ClientId id = kFirstClientId + i;
    stations[local++ % n_stations]->add_client(id, make_engine(id));
  }

  // Replica timers live in the replica processes: the loadgen ticker only
  // paces clients.
  Report report = drive<Engine, net::TcpTransport>(
      options, transport, stations, hist, measuring, [](Micros) {});

  const net::TransportStats stats = transport.stats();
  report.transport.bytes_in = stats.bytes_in;
  report.transport.bytes_out = stats.bytes_out;
  report.transport.frames_in = stats.frames_in;
  report.transport.frames_out = stats.frames_out;
  report.transport.writev_calls = stats.writev_calls;
  report.transport.frames_per_writev = stats.frames_per_writev();
  report.transport.reconnects = stats.reconnects;
  report.transport.backpressure_drops = stats.backpressure_drops;
  report.transport.state_frames_in = stats.state_frames_in;
  report.transport.state_frames_out = stats.state_frames_out;
  report.transport.state_bytes_in = stats.state_bytes_in;
  report.transport.state_bytes_out = stats.state_bytes_out;
  return report;
}

}  // namespace

Report run_tcp_workload(const Options& options,
                        const ClusterTopology& topology,
                        std::uint32_t loadgen_index,
                        net::TcpTransport::Options transport_options) {
  auto transport = topology.make_transport(topology.replicas + loadgen_index,
                                           std::move(transport_options));
  if (!transport->start()) {
    Report report;  // bind failure: report an unsustained zero run
    return report;
  }

  const pbft::ClientDirectory directory(kDirectorySeed);
  const pbft::Config config = options.protocol;

  if (options.stack == Stack::Pbft) {
    return run_loadgen<pbft::Client>(
        options, topology, *transport, loadgen_index, [&](ClientId id) {
          return pbft::Client(config, id, directory, /*retry=*/2'000'000);
        });
  }

  tee::AttestationService attestation(options.seed ^ kAttestationSalt);
  splitbft::SplitClient::TrustAnchors anchors;
  anchors.attestation_root = attestation.root_public_key();
  return run_loadgen<splitbft::SplitClient>(
      options, topology, *transport, loadgen_index, [&](ClientId id) {
        splitbft::SplitClient engine(config, id, directory, anchors,
                                     options.seed, /*retry=*/2'000'000);
        engine.adopt_session(session_key(options.seed, id));
        return engine;
      });
}

// ------------------------------------------------------------- sharding

std::vector<ClusterTopology> sharded_topologies(
    std::uint32_t shards, std::uint32_t replicas, std::uint32_t loadgens,
    const std::vector<std::string>& flat_addrs) {
  const std::uint32_t span = replicas + loadgens;
  std::vector<ClusterTopology> out;
  out.reserve(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    ClusterTopology topology;
    topology.replicas = replicas;
    topology.loadgens = loadgens;
    topology.addrs.assign(
        flat_addrs.begin() + static_cast<std::ptrdiff_t>(s) * span,
        flat_addrs.begin() + static_cast<std::ptrdiff_t>(s + 1) * span);
    out.push_back(std::move(topology));
  }
  return out;
}

Options shard_options(Options options, std::uint32_t shard) {
  options.seed = shard::shard_seed(options.seed, shard);
  return options;
}

namespace {

/// The first client id past the load clients that `node_of()` routes to
/// this loadgen node (ids round-robin over loadgens, so the audit
/// verifier must land on the node whose transports it reads from).
[[nodiscard]] ClientId audit_verifier_id(const Options& options,
                                         std::uint32_t loadgens,
                                         std::uint32_t loadgen_index) {
  const std::uint32_t span =
      (options.clients + loadgens - 1) / loadgens * loadgens;
  return kFirstClientId + span + loadgen_index;
}

/// The sharded counterpart of `Station`: clients are `shard::Router`s,
/// and every outbound envelope carries the shard whose transport must
/// send it. Replies arrive on the per-shard transports' consumer
/// threads, timers from the ticker thread; the station mutex serializes
/// both (transport send mutexes are leaves, so sending under it is
/// deadlock-free).
template <typename Engine>
class ShardedStation {
 public:
  ShardedStation(const Options& options,
                 std::vector<std::unique_ptr<net::TcpTransport>>& nets,
                 LatencyHistogram& hist, const std::atomic<bool>& measuring)
      : options_(options), nets_(nets), hist_(hist), measuring_(measuring) {}

  void add_client(ClientId id,
                  std::vector<std::unique_ptr<Engine>> engines) {
    shard::RouterOptions router_options;
    router_options.shards = static_cast<std::uint32_t>(engines.size());
    clients_.emplace(id,
                     Client(std::move(engines), router_options, options_,
                            options_.seed * 1'000'003 + id));
  }

  [[nodiscard]] std::vector<principal::Id> principals() const {
    std::vector<principal::Id> ids;
    ids.reserve(clients_.size());
    for (const auto& [id, client] : clients_) {
      ids.push_back(principal::client(id));
    }
    return ids;
  }

  void start(Micros now) {
    const std::scoped_lock lock(mutex_);
    for (auto& [id, c] : clients_) {
      if (options_.mode == LoadMode::Open) {
        c.due_at = now + std::max<Micros>(
                             1, exponential_us(c.rng, options_.interarrival_us));
      } else {
        submit(c, c.gen.next(), now, now);
      }
    }
  }

  void deliver(std::uint32_t shard, net::Envelope env) {
    if (env.type != pbft::tag(pbft::MsgType::Reply) &&
        env.type != pbft::tag(pbft::MsgType::ReadReply)) {
      return;
    }
    const Micros now = wall_clock_us();
    const auto target = static_cast<ClientId>(env.dst);
    const std::scoped_lock lock(mutex_);
    const auto it = clients_.find(target);
    if (it == clients_.end()) return;
    auto& c = it->second;
    std::vector<shard::Routed> outs;
    // `outs` carries fast-read fallbacks and 2PC phase transitions.
    if (c.router.on_reply(shard, env, now, outs)) completed(c, now);
    send(std::move(outs));
  }

  /// Ticker entry: due submissions, open-loop arrivals, engine retries.
  void tick(Micros now) {
    const std::scoped_lock lock(mutex_);
    for (auto& [id, c] : clients_) {
      if (!stopped_) {
        if (options_.mode == LoadMode::Open) {
          while (c.due_at != 0 && now >= c.due_at) {
            on_arrival(c, c.due_at);
            c.due_at += std::max<Micros>(
                1, exponential_us(c.rng, options_.interarrival_us));
          }
        } else if (c.due_at != 0 && now >= c.due_at) {
          c.due_at = 0;
          submit(c, c.gen.next(), now, now);
        }
      }
      send(c.router.tick(now));
    }
  }

  /// Stops new submissions; in-flight transactions keep draining on the
  /// replies and retries above.
  void stop_load() {
    const std::scoped_lock lock(mutex_);
    stopped_ = true;
  }

  [[nodiscard]] bool all_idle() {
    const std::scoped_lock lock(mutex_);
    for (const auto& [id, c] : clients_) {
      if (c.router.in_flight()) return false;
    }
    return true;
  }

  void accumulate_stats(Report& report) {
    const std::scoped_lock lock(mutex_);
    for (const auto& [id, c] : clients_) {
      report.fast_reads += c.router.fast_reads();
      report.read_fallbacks += c.router.read_fallbacks();
      const shard::RouterStats& s = c.router.stats();
      report.sharding.multi_ops += s.multi_ops;
      report.sharding.single_shard_multi += s.single_shard_multi;
      report.sharding.cross_shard_tx += s.cross_shard_tx;
      report.sharding.tx_commits += s.tx_commits;
      report.sharding.tx_aborts +=
          s.tx_aborts_vote + s.tx_aborts_busy + s.tx_aborts_expired;
      report.sharding.busy_retries += s.busy_retries;
    }
  }

 private:
  static constexpr std::size_t kMaxQueued = 256;

  struct Client {
    Client(std::vector<std::unique_ptr<Engine>> engines,
           shard::RouterOptions router_options, const Options& options,
           std::uint64_t seed)
        : router(std::move(engines), router_options),
          gen(options, seed),
          rng(seed ^ 0x10adc11e47ULL) {}

    shard::Router<Engine> router;
    OpGenerator gen;
    Rng rng;
    Micros inflight_from{0};
    Micros due_at{0};
    std::deque<std::pair<Micros, GeneratedOp>> queued;
  };

  void send(std::vector<shard::Routed> outs) {
    for (auto& r : outs) nets_[r.shard]->send(std::move(r.env));
  }

  void submit(Client& c, GeneratedOp op, Micros measured_from, Micros now) {
    c.inflight_from = measured_from;
    send(c.router.submit(std::move(op.op), now, op.read_only));
  }

  void completed(Client& c, Micros now) {
    if (measuring_.load(std::memory_order_relaxed)) {
      hist_.record(now - c.inflight_from);
    }
    if (stopped_) return;
    if (options_.mode == LoadMode::Open) {
      if (!c.queued.empty()) {
        auto [arrived, op] = std::move(c.queued.front());
        c.queued.pop_front();
        submit(c, std::move(op), arrived, now);
      }
      return;
    }
    const Micros think = exponential_us(c.rng, options_.think_time_us);
    if (think == 0) {
      submit(c, c.gen.next(), now, now);
    } else {
      c.due_at = now + think;
    }
  }

  void on_arrival(Client& c, Micros arrived) {
    if (!c.router.in_flight()) {
      submit(c, c.gen.next(), arrived, wall_clock_us());
    } else if (c.queued.size() < kMaxQueued) {
      c.queued.emplace_back(arrived, c.gen.next());
    }
    // else: shed load (open-loop back-pressure)
  }

  const Options& options_;
  std::vector<std::unique_ptr<net::TcpTransport>>& nets_;
  LatencyHistogram& hist_;
  const std::atomic<bool>& measuring_;
  std::mutex mutex_;
  bool stopped_{false};
  std::unordered_map<ClientId, Client> clients_;
};

/// Blocking one-op-at-a-time router client for the post-run audit: reads
/// go through the ordered path (not the fast path), paced by its own
/// retry ticks.
template <typename Engine>
class SyncRouterClient {
 public:
  SyncRouterClient(std::vector<std::unique_ptr<Engine>> engines,
                   std::vector<std::unique_ptr<net::TcpTransport>>& nets)
      : nets_(nets), router_(make_router(std::move(engines))) {
    for (std::uint32_t shard = 0;
         shard < static_cast<std::uint32_t>(nets_.size()); ++shard) {
      nets_[shard]->register_endpoint_group(
          {principal::client(router_.id())},
          [this, shard](net::Envelope env) { on_env(shard, std::move(env)); });
    }
  }

  [[nodiscard]] std::optional<Bytes> execute(Bytes op) {
    {
      const std::scoped_lock lock(mutex_);
      if (router_.in_flight()) return std::nullopt;  // wedged earlier op
      result_.reset();
      send(router_.submit(std::move(op), wall_clock_us()));
    }
    const Micros deadline = wall_clock_us() + 10'000'000;
    while (wall_clock_us() < deadline) {
      std::this_thread::sleep_for(std::chrono::microseconds(500));
      const std::scoped_lock lock(mutex_);
      if (result_) return std::move(result_);
      send(router_.tick(wall_clock_us()));
    }
    return std::nullopt;
  }

 private:
  [[nodiscard]] static shard::Router<Engine> make_router(
      std::vector<std::unique_ptr<Engine>> engines) {
    shard::RouterOptions router_options;
    router_options.shards = static_cast<std::uint32_t>(engines.size());
    return shard::Router<Engine>(std::move(engines), router_options);
  }

  void on_env(std::uint32_t shard, net::Envelope env) {
    if (env.type != pbft::tag(pbft::MsgType::Reply) &&
        env.type != pbft::tag(pbft::MsgType::ReadReply)) {
      return;
    }
    const Micros now = wall_clock_us();
    const std::scoped_lock lock(mutex_);
    std::vector<shard::Routed> outs;
    if (auto result = router_.on_reply(shard, env, now, outs)) {
      result_ = std::move(result);
    }
    send(std::move(outs));
  }

  void send(std::vector<shard::Routed> outs) {
    for (auto& r : outs) nets_[r.shard]->send(std::move(r.env));
  }

  std::vector<std::unique_ptr<net::TcpTransport>>& nets_;
  shard::Router<Engine> router_;
  std::mutex mutex_;
  std::optional<Bytes> result_;
};

template <typename Engine, typename MakeEngines>
Report run_sharded_loadgen(const Options& options,
                           std::vector<std::unique_ptr<net::TcpTransport>>& nets,
                           std::uint32_t loadgens, std::uint32_t loadgen_index,
                           MakeEngines&& make_engines) {
  LatencyHistogram hist;
  std::atomic<bool> measuring{false};

  using S = ShardedStation<Engine>;
  std::vector<std::unique_ptr<S>> stations;
  const std::size_t n_stations = station_count(options);
  for (std::size_t s = 0; s < n_stations; ++s) {
    stations.push_back(std::make_unique<S>(options, nets, hist, measuring));
  }
  std::size_t local = 0;
  for (std::uint32_t i = 0; i < options.clients; ++i) {
    if (i % loadgens != loadgen_index) continue;
    const ClientId id = kFirstClientId + i;
    stations[local++ % n_stations]->add_client(id, make_engines(id));
  }
  // Destroyed after the transports shut down (handlers reference it).
  std::unique_ptr<SyncRouterClient<Engine>> verifier;

  for (auto& station : stations) {
    S* s = station.get();
    for (std::uint32_t shard = 0;
         shard < static_cast<std::uint32_t>(nets.size()); ++shard) {
      nets[shard]->register_endpoint_group(
          s->principals(), [s, shard](net::Envelope env) {
            s->deliver(shard, std::move(env));
          });
    }
  }

  // Replica timers live in the replica processes; this ticker only paces
  // clients (all shards, every station).
  std::atomic<bool> quit{false};
  std::thread ticker([&] {
    while (!quit.load(std::memory_order_relaxed)) {
      const Micros now = wall_clock_us();
      for (auto& station : stations) station->tick(now);
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  const Micros start = wall_clock_us();
  for (auto& station : stations) station->start(start);
  std::this_thread::sleep_for(std::chrono::microseconds(options.warmup_us));

  measuring.store(true);
  bool sustained = true;
  std::uint64_t prev = hist.count();
  for (int quarter = 0; quarter < 4; ++quarter) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(options.measure_us / 4));
    const std::uint64_t count = hist.count();
    if (count == prev) sustained = false;
    prev = count;
  }
  measuring.store(false);

  Report report;
  summarize_into(hist, options.measure_us, report);
  report.sustained = sustained && report.completed_ops > 0;

  if (options.cross_shard_fraction > 0 && options.multi_keys >= 2) {
    // Quiesce, then the same torn-write audit as the sim driver, over
    // real sockets: all keys of a group were only ever written together
    // with one value, so any disagreement is a torn transaction. The
    // ticker stays alive so in-flight transactions drain on retries.
    for (auto& station : stations) station->stop_load();
    const Micros drain_deadline = wall_clock_us() + 15'000'000;
    while (wall_clock_us() < drain_deadline) {
      bool idle = true;
      for (auto& station : stations) idle = idle && station->all_idle();
      if (idle) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    const ClientId id = audit_verifier_id(options, loadgens, loadgen_index);
    verifier =
        std::make_unique<SyncRouterClient<Engine>>(make_engines(id), nets);
    for (std::uint64_t g = 0; g < options.multi_groups; ++g) {
      bool first = true;
      bool torn = false;
      Bytes reference;
      for (const auto& key : group_keys(options, g)) {
        const auto result = verifier->execute(apps::kv::encode_get(key));
        if (!result) {
          torn = true;  // an unreadable key fails loudly, not silently
          break;
        }
        // Compare full replies so NotFound vs an empty value differ.
        if (first) {
          reference = *result;
          first = false;
        } else if (*result != reference) {
          torn = true;
          break;
        }
      }
      ++report.sharding.groups_checked;
      if (torn) ++report.sharding.torn_groups;
    }
  }

  quit.store(true);
  ticker.join();
  for (auto& net : nets) net->shutdown();

  for (auto& station : stations) station->accumulate_stats(report);
  for (auto& net : nets) {
    const net::TransportStats stats = net->stats();
    report.transport.bytes_in += stats.bytes_in;
    report.transport.bytes_out += stats.bytes_out;
    report.transport.frames_in += stats.frames_in;
    report.transport.frames_out += stats.frames_out;
    report.transport.writev_calls += stats.writev_calls;
    report.transport.reconnects += stats.reconnects;
    report.transport.backpressure_drops += stats.backpressure_drops;
    report.transport.state_frames_in += stats.state_frames_in;
    report.transport.state_frames_out += stats.state_frames_out;
    report.transport.state_bytes_in += stats.state_bytes_in;
    report.transport.state_bytes_out += stats.state_bytes_out;
  }
  report.transport.frames_per_writev =
      report.transport.writev_calls
          ? static_cast<double>(report.transport.frames_out) /
                static_cast<double>(report.transport.writev_calls)
          : 0.0;
  return report;
}

}  // namespace

Report run_sharded_tcp_workload(const Options& options,
                                const std::vector<ClusterTopology>& topologies,
                                std::uint32_t loadgen_index,
                                net::TcpTransport::Options transport_options) {
  std::vector<std::unique_ptr<net::TcpTransport>> nets;
  nets.reserve(topologies.size());
  for (const auto& topology : topologies) {
    auto net = topology.make_transport(topology.replicas + loadgen_index,
                                       transport_options);
    if (!net->start()) {
      for (auto& up : nets) up->shutdown();
      return Report{};  // bind failure: report an unsustained zero run
    }
    nets.push_back(std::move(net));
  }

  const pbft::ClientDirectory directory(kDirectorySeed);
  const pbft::Config config = options.protocol;
  const std::uint32_t loadgens = topologies.front().loadgens;
  const auto shards = static_cast<std::uint32_t>(topologies.size());

  if (options.stack == Stack::Pbft) {
    return run_sharded_loadgen<pbft::Client>(
        options, nets, loadgens, loadgen_index, [&](ClientId id) {
          std::vector<std::unique_ptr<pbft::Client>> engines;
          for (std::uint32_t s = 0; s < shards; ++s) {
            engines.push_back(std::make_unique<pbft::Client>(
                config, id, directory, /*retry=*/2'000'000));
          }
          return engines;
        });
  }

  // One trust domain per shard: anchors and session keys derive from the
  // shard seed, matching that group's replica processes.
  std::vector<std::uint64_t> seeds;
  std::vector<splitbft::SplitClient::TrustAnchors> anchors(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    seeds.push_back(shard::shard_seed(options.seed, s));
    tee::AttestationService attestation(seeds[s] ^ kAttestationSalt);
    anchors[s].attestation_root = attestation.root_public_key();
  }
  return run_sharded_loadgen<splitbft::SplitClient>(
      options, nets, loadgens, loadgen_index, [&](ClientId id) {
        std::vector<std::unique_ptr<splitbft::SplitClient>> engines;
        for (std::uint32_t s = 0; s < shards; ++s) {
          auto engine = std::make_unique<splitbft::SplitClient>(
              config, id, directory, anchors[s], seeds[s],
              /*retry=*/2'000'000);
          engine->adopt_session(session_key(seeds[s], id));
          engines.push_back(std::move(engine));
        }
        return engines;
      });
}

}  // namespace sbft::runtime::workload
