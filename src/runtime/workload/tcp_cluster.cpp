#include "runtime/workload/tcp_cluster.hpp"

#include <mutex>
#include <utility>

#include "apps/kv_store.hpp"
#include "common/rng.hpp"
#include "crypto/keyring.hpp"
#include "crypto/x25519.hpp"
#include "pbft/client.hpp"
#include "pbft/replica.hpp"
#include "runtime/runner/runner.hpp"
#include "runtime/workload/station.hpp"
#include "splitbft/client.hpp"
#include "splitbft/replica.hpp"
#include "tee/attestation.hpp"
#include "tee/sealing.hpp"

namespace sbft::runtime::workload {

namespace {

// Key-derivation offsets shared with the threaded driver: every process of
// a deployment reconstructs the SAME keyring/attestation/group-key material
// from the workload seed, replacing the in-process sharing the thread
// driver gets for free.
constexpr std::uint64_t kPbftKeyringSalt = 0x6b657972696e67ULL;
constexpr std::uint64_t kSplitKeyringSalt = 0x5b5f7b657972ULL;
constexpr std::uint64_t kAttestationSalt = 0xa77e57ULL;
constexpr std::uint64_t kSealingSalt = 0x5ea1ULL;
constexpr std::uint64_t kClusterRngSalt = 0x5b5f636c7573ULL;
constexpr std::uint64_t kDirectorySeed = 0x5ec7e7;

}  // namespace

std::uint32_t ClusterTopology::node_of(principal::Id id) const noexcept {
  if (id >= kFirstClientId) {
    return replicas +
           static_cast<std::uint32_t>((id - kFirstClientId) % loadgens);
  }
  if (id >= principal::splitbft_env(0)) {
    return static_cast<std::uint32_t>(id - principal::splitbft_env(0));
  }
  if (id >= principal::enclave({0, Compartment::Preparation}) &&
      id < principal::hybrid_replica(0)) {
    return static_cast<std::uint32_t>(
        (id - principal::enclave({0, Compartment::Preparation})) /
        kNumCompartments);
  }
  if (id >= principal::pbft_replica(0)) {
    return static_cast<std::uint32_t>(id - principal::pbft_replica(0));
  }
  return 0;
}

net::TcpTransport::RouteFn ClusterTopology::route() const {
  const ClusterTopology copy{replicas, loadgens, {}};
  return [copy](principal::Id id) { return copy.node_of(id); };
}

std::unique_ptr<net::TcpTransport> ClusterTopology::make_transport(
    std::uint32_t node, net::TcpTransport::Options options) const {
  options.listen_addr = addrs.at(node);
  if (options.state_transfer_types.empty()) {
    // Classify recovery traffic for TransportStats (both stacks use the
    // PBFT state-transfer message family).
    options.state_transfer_types = {
        pbft::tag(pbft::MsgType::StateRequest),
        pbft::tag(pbft::MsgType::StateResponse),
        pbft::tag(pbft::MsgType::StateChunkRequest),
        pbft::tag(pbft::MsgType::StateChunkResponse)};
  }
  auto transport =
      std::make_unique<net::TcpTransport>(node, std::move(options), route());
  for (std::uint32_t other = 0; other < nodes(); ++other) {
    if (other != node) transport->add_peer(other, addrs.at(other));
  }
  return transport;
}

// ------------------------------------------------------------ ReplicaNode

struct ReplicaNode::Impl {
  std::mutex mutex;
  std::unique_ptr<pbft::Replica> pbft;
  std::shared_ptr<splitbft::SplitbftReplica> split;

  [[nodiscard]] std::vector<net::Envelope> handle(const net::Envelope& env,
                                                  Micros now) {
    const std::scoped_lock lock(mutex);
    return pbft ? pbft->handle(env, now) : split->handle(env, now);
  }
  [[nodiscard]] std::vector<net::Envelope> tick(Micros now) {
    const std::scoped_lock lock(mutex);
    return pbft ? pbft->tick(now) : split->tick(now);
  }
};

ReplicaNode::ReplicaNode(const Options& options,
                         const ClusterTopology& topology, ReplicaId replica,
                         net::TcpTransport::Options transport_options)
    : options_(options),
      topology_(topology),
      replica_(replica),
      transport_(topology.make_transport(replica, std::move(transport_options))),
      impl_(std::make_unique<Impl>()) {
  const pbft::Config config = options_.protocol;
  const pbft::ClientDirectory directory(kDirectorySeed);

  if (options_.stack == Stack::Pbft) {
    crypto::KeyRing keyring(crypto::Scheme::HmacShared,
                            options_.seed ^ kPbftKeyringSalt);
    for (ReplicaId r = 0; r < config.n; ++r) {
      keyring.add_principal(principal::pbft_replica(r));
    }
    impl_->pbft = std::make_unique<pbft::Replica>(
        config, replica_, keyring.signer(principal::pbft_replica(replica_)),
        keyring.verifier(), directory,
        [] { return std::make_unique<apps::KvStore>(); },
        /*auth=*/nullptr, runner::make_runner(options_.workers));
    return;
  }

  crypto::KeyRing keyring(crypto::Scheme::HmacShared,
                          options_.seed ^ kSplitKeyringSalt);
  tee::AttestationService attestation(options_.seed ^ kAttestationSalt);
  tee::SealingService sealing(options_.seed ^ kSealingSalt);
  Rng rng(options_.seed ^ kClusterRngSalt);
  crypto::Key32 exec_group_key;
  for (auto& b : exec_group_key) b = static_cast<std::uint8_t>(rng.next_u64());

  for (ReplicaId r = 0; r < config.n; ++r) {
    for (const Compartment c :
         {Compartment::Preparation, Compartment::Confirmation,
          Compartment::Execution}) {
      keyring.add_principal(principal::enclave({r, c}));
    }
  }

  splitbft::ReplicaOptions replica_options;
  replica_options.config = config;
  replica_options.cost_model = tee::CostModel::simulation();
  replica_options.charge_real_time = false;
  replica_options.exec_workers = options_.workers;

  // The thread driver draws every replica's DH key from ONE rng stream;
  // replay that stream so replica r's key is identical in every process.
  crypto::Key32 dh_secret{};
  for (ReplicaId r = 0; r <= replica_; ++r) {
    dh_secret = crypto::x25519_keygen(rng);
  }
  impl_->split = std::make_shared<splitbft::SplitbftReplica>(
      replica_options, replica_, keyring, attestation, sealing, exec_group_key,
      dh_secret,
      splitbft::plain_app([] { return std::make_unique<apps::KvStore>(); }));

  // Out-of-band session provisioning (see workload::session_key): install
  // every expected client's key, mirroring the in-process drivers.
  for (std::uint32_t i = 0; i < options_.clients; ++i) {
    const ClientId id = kFirstClientId + i;
    impl_->split->exec_mutable().install_session(
        id, session_key(options_.seed, id));
  }
}

ReplicaNode::~ReplicaNode() { stop(); }

bool ReplicaNode::start() {
  if (running_.exchange(true)) return true;
  Impl* impl = impl_.get();
  net::TcpTransport* transport = transport_.get();
  const auto handler = [impl, transport](net::Envelope env) {
    auto outs = impl->handle(env, wall_clock_us());
    for (auto& out : outs) transport->send(std::move(out));
  };
  if (options_.stack == Stack::Pbft) {
    transport_->register_endpoint(principal::pbft_replica(replica_), handler);
  } else {
    transport_->register_endpoint_group(
        {principal::splitbft_env(replica_),
         principal::enclave({replica_, Compartment::Preparation}),
         principal::enclave({replica_, Compartment::Confirmation}),
         principal::enclave({replica_, Compartment::Execution})},
        handler);
  }
  if (!transport_->start()) {
    running_.store(false);
    return false;
  }
  ticker_ = std::thread([this] { ticker_main(); });
  return true;
}

void ReplicaNode::ticker_main() {
  while (running_.load(std::memory_order_relaxed)) {
    auto outs = impl_->tick(wall_clock_us());
    for (auto& out : outs) transport_->send(std::move(out));
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
}

void ReplicaNode::stop() {
  if (!running_.exchange(false)) return;
  if (ticker_.joinable()) ticker_.join();
  transport_->shutdown();
}

std::uint64_t ReplicaNode::admission_rejects() const {
  const std::scoped_lock lock(impl_->mutex);
  return impl_->pbft ? impl_->pbft->admission_rejects()
                     : impl_->split->broker().admission_rejects();
}

SeqNum ReplicaNode::last_executed() const {
  const std::scoped_lock lock(impl_->mutex);
  return impl_->pbft ? impl_->pbft->last_executed()
                     : impl_->split->exec().last_executed();
}

SeqNum ReplicaNode::last_stable() const {
  const std::scoped_lock lock(impl_->mutex);
  return impl_->pbft ? impl_->pbft->last_stable()
                     : impl_->split->exec().last_stable();
}

bool ReplicaNode::awaiting_state() const {
  const std::scoped_lock lock(impl_->mutex);
  return impl_->pbft ? impl_->pbft->awaiting_state()
                     : impl_->split->exec().awaiting_state();
}

pbft::StateTransferStats ReplicaNode::state_transfer_stats() const {
  const std::scoped_lock lock(impl_->mutex);
  return impl_->pbft ? impl_->pbft->state_transfer_stats()
                     : impl_->split->exec().state_transfer_stats();
}

// -------------------------------------------------------------- loadgen

namespace {

template <typename Engine, typename MakeEngine>
Report run_loadgen(const Options& options, const ClusterTopology& topology,
                   net::TcpTransport& transport, std::uint32_t loadgen_index,
                   MakeEngine&& make_engine) {
  LatencyHistogram hist;
  std::atomic<bool> measuring{false};

  using S = Station<Engine, net::TcpTransport>;
  std::vector<std::unique_ptr<S>> stations;
  const std::size_t n_stations = station_count(options);
  for (std::size_t s = 0; s < n_stations; ++s) {
    stations.push_back(
        std::make_unique<S>(options, transport, hist, measuring));
  }
  std::size_t local = 0;
  for (std::uint32_t i = 0; i < options.clients; ++i) {
    if (i % topology.loadgens != loadgen_index) continue;
    const ClientId id = kFirstClientId + i;
    stations[local++ % n_stations]->add_client(id, make_engine(id));
  }

  // Replica timers live in the replica processes: the loadgen ticker only
  // paces clients.
  Report report = drive<Engine, net::TcpTransport>(
      options, transport, stations, hist, measuring, [](Micros) {});

  const net::TransportStats stats = transport.stats();
  report.transport.bytes_in = stats.bytes_in;
  report.transport.bytes_out = stats.bytes_out;
  report.transport.frames_in = stats.frames_in;
  report.transport.frames_out = stats.frames_out;
  report.transport.writev_calls = stats.writev_calls;
  report.transport.frames_per_writev = stats.frames_per_writev();
  report.transport.reconnects = stats.reconnects;
  report.transport.backpressure_drops = stats.backpressure_drops;
  report.transport.state_frames_in = stats.state_frames_in;
  report.transport.state_frames_out = stats.state_frames_out;
  report.transport.state_bytes_in = stats.state_bytes_in;
  report.transport.state_bytes_out = stats.state_bytes_out;
  return report;
}

}  // namespace

Report run_tcp_workload(const Options& options,
                        const ClusterTopology& topology,
                        std::uint32_t loadgen_index,
                        net::TcpTransport::Options transport_options) {
  auto transport = topology.make_transport(topology.replicas + loadgen_index,
                                           std::move(transport_options));
  if (!transport->start()) {
    Report report;  // bind failure: report an unsustained zero run
    return report;
  }

  const pbft::ClientDirectory directory(kDirectorySeed);
  const pbft::Config config = options.protocol;

  if (options.stack == Stack::Pbft) {
    return run_loadgen<pbft::Client>(
        options, topology, *transport, loadgen_index, [&](ClientId id) {
          return pbft::Client(config, id, directory, /*retry=*/2'000'000);
        });
  }

  tee::AttestationService attestation(options.seed ^ kAttestationSalt);
  splitbft::SplitClient::TrustAnchors anchors;
  anchors.attestation_root = attestation.root_public_key();
  return run_loadgen<splitbft::SplitClient>(
      options, topology, *transport, loadgen_index, [&](ClientId id) {
        splitbft::SplitClient engine(config, id, directory, anchors,
                                     options.seed, /*retry=*/2'000'000);
        engine.adopt_session(session_key(options.seed, id));
        return engine;
      });
}

}  // namespace sbft::runtime::workload
