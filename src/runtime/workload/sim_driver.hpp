// Workload engine, simulator driver.
//
// Runs the configured load shape against a perf-modeled PBFT or SplitBFT
// cluster in virtual time: thousands of closed- or open-loop clients on
// the deterministic SimHarness, replicas wrapped in the PR 2 performance
// model so queueing and pipeline effects emerge as on real hardware.
// Deterministic from Options::seed.
#pragma once

#include "runtime/workload/workload.hpp"

namespace sbft::runtime::workload {

/// Runs one load point to completion in virtual time.
[[nodiscard]] Report run_sim_workload(const Options& options);

}  // namespace sbft::runtime::workload
