// Wall-clock workload stations: the client-pacing half of the threaded
// driver, factored out so it runs over ANY transport with the ThreadNetwork
// surface (`send`, `register_endpoint_group`, `shutdown`) — the in-process
// ThreadNetwork and the real TcpTransport both qualify.
//
// A station multiplexes many client engines onto one endpoint group:
// replies arrive on the transport's consumer thread, timers fire from the
// ticker thread; the station mutex serializes both. `drive()` is the shared
// run skeleton (warmup, quartered sustained measurement, teardown).
#pragma once

#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "pbft/messages.hpp"
#include "runtime/workload/workload.hpp"

namespace sbft::runtime::workload {

[[nodiscard]] inline Micros wall_clock_us() {
  static const SteadyClock clock;
  return clock.now();
}

/// One client's pacing state inside a station.
template <typename Engine>
struct StationClient {
  StationClient(Engine e, const Options& options, std::uint64_t seed)
      : engine(std::move(e)),
        gen(options, seed),
        rng(seed ^ 0x10adc11e47ULL) {}

  Engine engine;
  OpGenerator gen;
  Rng rng;
  Micros inflight_from{0};
  /// Closed loop: pending think-time release (0 = none). Open loop: the
  /// next Poisson arrival.
  Micros due_at{0};
  // open-loop waiting arrivals
  std::deque<std::pair<Micros, GeneratedOp>> queued;
};

template <typename Engine, typename Net>
class Station {
 public:
  Station(const Options& options, Net& net, LatencyHistogram& hist,
          const std::atomic<bool>& measuring)
      : options_(options), net_(net), hist_(hist), measuring_(measuring) {}

  void add_client(ClientId id, Engine engine) {
    clients_.emplace(id, StationClient<Engine>(std::move(engine), options_,
                                               options_.seed * 1'000'003 + id));
  }

  /// Sums the clients' read fast-path counters (post-run reporting).
  void accumulate_read_stats(std::uint64_t& fast_reads,
                             std::uint64_t& read_fallbacks) {
    const std::scoped_lock lock(mutex_);
    for (const auto& [id, c] : clients_) {
      fast_reads += c.engine.fast_reads();
      read_fallbacks += c.engine.read_fallbacks();
    }
  }

  [[nodiscard]] std::vector<principal::Id> principals() const {
    std::vector<principal::Id> ids;
    ids.reserve(clients_.size());
    for (const auto& [id, client] : clients_) {
      ids.push_back(principal::client(id));
    }
    return ids;
  }

  void start(Micros now) {
    const std::scoped_lock lock(mutex_);
    for (auto& [id, c] : clients_) {
      if (options_.mode == LoadMode::Open) {
        c.due_at = now + std::max<Micros>(
                             1, exponential_us(c.rng, options_.interarrival_us));
      } else {
        submit(c, c.gen.next(), now, now);
      }
    }
  }

  void deliver(net::Envelope env) {
    const Micros now = wall_clock_us();
    // principal::client is the identity mapping: the dst IS the client id.
    const auto target = static_cast<ClientId>(env.dst);
    std::vector<net::Envelope> outs;
    {
      const std::scoped_lock lock(mutex_);
      const auto it = clients_.find(target);
      if (it == clients_.end()) return;
      auto& c = it->second;
      if (env.type == pbft::tag(pbft::MsgType::Reply) ||
          env.type == pbft::tag(pbft::MsgType::ReadReply)) {
        // `outs` carries the ordered re-broadcast on a fast-read fallback.
        if (c.engine.on_reply(env, now, outs)) completed(c, now);
      } else if constexpr (requires(Engine& e, const net::Envelope& v,
                                    Micros t) { e.on_message(v, t); }) {
        outs = c.engine.on_message(env, now);
      }
    }
    for (auto& out : outs) net_.send(std::move(out));
  }

  /// Ticker entry: due submissions, open-loop arrivals, engine retries.
  void tick(Micros now) {
    std::vector<net::Envelope> outs;
    {
      const std::scoped_lock lock(mutex_);
      for (auto& [id, c] : clients_) {
        if (options_.mode == LoadMode::Open) {
          while (c.due_at != 0 && now >= c.due_at) {
            on_arrival(c, c.due_at);
            c.due_at += std::max<Micros>(
                1, exponential_us(c.rng, options_.interarrival_us));
          }
        } else if (c.due_at != 0 && now >= c.due_at) {
          c.due_at = 0;
          submit(c, c.gen.next(), now, now);
        }
        auto retries = c.engine.tick(now);
        outs.insert(outs.end(), std::make_move_iterator(retries.begin()),
                    std::make_move_iterator(retries.end()));
      }
    }
    for (auto& out : outs) net_.send(std::move(out));
  }

 private:
  static constexpr std::size_t kMaxQueued = 256;

  void submit(StationClient<Engine>& c, GeneratedOp op, Micros measured_from,
              Micros now) {
    c.inflight_from = measured_from;
    // Sending under the station lock is deadlock-free: transport send
    // mutexes are leaves, and no endpoint handler takes another station's
    // lock.
    for (auto& env : c.engine.submit(std::move(op.op), now, op.read_only)) {
      net_.send(std::move(env));
    }
  }

  void completed(StationClient<Engine>& c, Micros now) {
    if (measuring_.load(std::memory_order_relaxed)) {
      hist_.record(now - c.inflight_from);
    }
    if (options_.mode == LoadMode::Open) {
      if (!c.queued.empty()) {
        auto [arrived, op] = std::move(c.queued.front());
        c.queued.pop_front();
        submit(c, std::move(op), arrived, now);
      }
      return;
    }
    const Micros think = exponential_us(c.rng, options_.think_time_us);
    if (think == 0) {
      submit(c, c.gen.next(), now, now);
    } else {
      c.due_at = now + think;
    }
  }

  void on_arrival(StationClient<Engine>& c, Micros arrived) {
    if (!c.engine.in_flight()) {
      submit(c, c.gen.next(), arrived, wall_clock_us());
    } else if (c.queued.size() < kMaxQueued) {
      c.queued.emplace_back(arrived, c.gen.next());
    }
    // else: shed load (open-loop back-pressure)
  }

  const Options& options_;
  Net& net_;
  LatencyHistogram& hist_;
  const std::atomic<bool>& measuring_;
  std::mutex mutex_;
  std::unordered_map<ClientId, StationClient<Engine>> clients_;
};

/// Shared run skeleton: `replica_tick(now)` drives protocol timers,
/// stations drive client pacing; measurement is quartered for the
/// sustained check, exactly as in the simulator driver.
template <typename Engine, typename Net, typename ReplicaTickFn>
Report drive(const Options& options, Net& net,
             std::vector<std::unique_ptr<Station<Engine, Net>>>& stations,
             LatencyHistogram& hist, std::atomic<bool>& measuring,
             ReplicaTickFn&& replica_tick) {
  for (auto& station : stations) {
    Station<Engine, Net>* s = station.get();
    net.register_endpoint_group(
        s->principals(), [s](net::Envelope env) { s->deliver(std::move(env)); });
  }

  std::atomic<bool> quit{false};
  std::thread ticker([&] {
    while (!quit.load(std::memory_order_relaxed)) {
      const Micros now = wall_clock_us();
      replica_tick(now);
      for (auto& station : stations) station->tick(now);
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  const Micros start = wall_clock_us();
  for (auto& station : stations) station->start(start);
  std::this_thread::sleep_for(std::chrono::microseconds(options.warmup_us));

  measuring.store(true);
  bool sustained = true;
  std::uint64_t prev = hist.count();
  for (int quarter = 0; quarter < 4; ++quarter) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(options.measure_us / 4));
    const std::uint64_t count = hist.count();
    if (count == prev) sustained = false;
    prev = count;
  }
  measuring.store(false);

  quit.store(true);
  ticker.join();
  net.shutdown();

  Report report;
  summarize_into(hist, options.measure_us, report);
  report.sustained = sustained && report.completed_ops > 0;
  for (auto& station : stations) {
    station->accumulate_read_stats(report.fast_reads, report.read_fallbacks);
  }
  return report;
}

[[nodiscard]] inline std::size_t station_count(const Options& options) {
  const std::size_t hw = std::max(2u, std::thread::hardware_concurrency());
  return std::max<std::size_t>(
      1, std::min<std::size_t>({hw / 2, 8, options.clients}));
}

}  // namespace sbft::runtime::workload
