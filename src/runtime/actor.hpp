// Actor: anything that consumes envelopes and emits envelopes.
//
// Replicas, compartment brokers, clients and byzantine attackers all
// implement this interface so the simulation harness can host any mix of
// honest and adversarial participants.
#pragma once

#include <vector>

#include "common/clock.hpp"
#include "net/message.hpp"

namespace sbft::runtime {

class Actor {
 public:
  virtual ~Actor() = default;

  /// Processes one delivered envelope; returns envelopes to transmit.
  [[nodiscard]] virtual std::vector<net::Envelope> handle(
      const net::Envelope& env, Micros now) = 0;

  /// Periodic timer; returns envelopes to transmit.
  [[nodiscard]] virtual std::vector<net::Envelope> tick(Micros now) = 0;
};

}  // namespace sbft::runtime
