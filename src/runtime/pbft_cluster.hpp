// Test/bench helper: a full PBFT cluster on the simulation harness.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "apps/app.hpp"
#include "crypto/keyring.hpp"
#include "pbft/client.hpp"
#include "pbft/replica.hpp"
#include "runtime/sim_harness.hpp"

namespace sbft::runtime {

/// Adapts a pbft::Replica to the Actor interface.
class PbftReplicaActor final : public Actor {
 public:
  explicit PbftReplicaActor(std::unique_ptr<pbft::Replica> replica)
      : replica_(std::move(replica)) {}

  [[nodiscard]] std::vector<net::Envelope> handle(const net::Envelope& env,
                                                  Micros now) override {
    return replica_->handle(env, now);
  }
  [[nodiscard]] std::vector<net::Envelope> tick(Micros now) override {
    return replica_->tick(now);
  }
  [[nodiscard]] pbft::Replica& replica() noexcept { return *replica_; }

 private:
  std::unique_ptr<pbft::Replica> replica_;
};

/// Adapts a pbft::Client; completed results are queued for the test to read.
class PbftClientActor final : public Actor {
 public:
  PbftClientActor(pbft::Config config, ClientId id,
                  const pbft::ClientDirectory& directory)
      : client_(config, id, directory) {}

  [[nodiscard]] std::vector<net::Envelope> handle(const net::Envelope& env,
                                                  Micros now) override {
    std::vector<net::Envelope> out;
    if (auto result = client_.on_reply(env, now, out)) {
      results_.push_back(std::move(*result));
    }
    return out;
  }
  [[nodiscard]] std::vector<net::Envelope> tick(Micros now) override {
    return client_.tick(now);
  }

  [[nodiscard]] pbft::Client& client() noexcept { return client_; }
  [[nodiscard]] const std::vector<Bytes>& results() const noexcept {
    return results_;
  }

 private:
  pbft::Client client_;
  std::vector<Bytes> results_;
};

struct PbftClusterOptions {
  pbft::Config config{};
  std::uint64_t seed{1};
  crypto::Scheme scheme{crypto::Scheme::HmacShared};
  sim::LinkParams link_params{};
  std::uint64_t client_master_secret{0x5ec7e7};
  /// Staged execution-runner workers per replica: 0 = serial
  /// SyncOrderedRunner (reference path), N >= 1 = SpinOrderedRunner with N
  /// threads. Output is byte-identical either way; the parallel runner is
  /// safe under the sim because replicas drain it before returning.
  std::size_t exec_workers{0};
};

/// Builds n replicas + any number of clients on a SimHarness.
class PbftCluster {
 public:
  PbftCluster(PbftClusterOptions options, apps::AppFactory app_factory);

  [[nodiscard]] pbft::Replica& replica(ReplicaId r) {
    return replicas_.at(r)->replica();
  }
  [[nodiscard]] std::shared_ptr<PbftReplicaActor> replica_actor(ReplicaId r) {
    return replicas_.at(r);
  }
  [[nodiscard]] PbftClientActor& client(ClientId c) { return *clients_.at(c); }

  /// Adds a client actor (id must be >= kFirstClientId).
  void add_client(ClientId id);

  /// Runs one operation to completion in simulated time.
  /// Returns the reply payload, or nullopt on (simulated) timeout.
  [[nodiscard]] std::optional<Bytes> execute(ClientId id, Bytes operation,
                                             Micros timeout_us = 10'000'000);

  /// Like execute(), but submits as a read-only request — the fast path
  /// when Config::read_path is on, falling back to ordering as the
  /// protocol dictates.
  [[nodiscard]] std::optional<Bytes> execute_read(
      ClientId id, Bytes operation, Micros timeout_us = 10'000'000);

  /// Detaches a replica from the network (crash fault) by replacing its
  /// handler with a sink. The Replica object stays inspectable.
  void crash_replica(ReplicaId r);

  /// Reattaches a previously crashed replica (recovery). The replica missed
  /// all traffic while down and must catch up via state transfer.
  void restore_replica(ReplicaId r);

  /// Verifies that no two replicas executed different batches at the same
  /// sequence number. Returns true when agreement holds.
  [[nodiscard]] bool check_agreement() const;

  [[nodiscard]] SimHarness& harness() noexcept { return harness_; }
  [[nodiscard]] const pbft::Config& config() const noexcept {
    return options_.config;
  }
  [[nodiscard]] const pbft::ClientDirectory& directory() const noexcept {
    return directory_;
  }
  [[nodiscard]] const crypto::KeyRing& keyring() const noexcept {
    return keyring_;
  }

 private:
  [[nodiscard]] std::optional<Bytes> execute_impl(ClientId id, Bytes operation,
                                                  bool read_only,
                                                  Micros timeout_us);

  PbftClusterOptions options_;
  SimHarness harness_;
  crypto::KeyRing keyring_;
  pbft::ClientDirectory directory_;
  std::vector<std::shared_ptr<PbftReplicaActor>> replicas_;
  std::unordered_map<ClientId, std::shared_ptr<PbftClientActor>> clients_;
};

}  // namespace sbft::runtime
