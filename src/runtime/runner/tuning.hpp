// Self-tuning for the staged execution pipeline: watches the replica's
// admitted-but-unexecuted backlog and adjusts the batching knobs between a
// latency regime (shallow queues, small batches, short pipeline) and a
// throughput regime (deep queues, large batches, deep pipeline). Purely
// observational inputs + virtual-time windows, so the simulator tunes
// deterministically; on the primary the tuned knobs only shape *proposals*,
// which are then consensus-ordered, so replicas never diverge.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "common/clock.hpp"

namespace sbft::runtime::runner {

/// Bounds and thresholds for AutoTuner. Defaults fit the 4-replica bench
/// configs (batch_max 200, watermark-gap 400).
struct TuningLimits {
  std::size_t batch_min{32};
  std::size_t batch_max{800};
  std::size_t depth_min{1};
  std::size_t depth_max{8};
  std::size_t read_batch_min{8};
  std::size_t read_batch_max{128};
  /// Backlog below this at window end -> shrink toward the latency regime.
  std::uint64_t low_watermark{64};
  /// Backlog above this at window end -> grow toward the throughput regime.
  std::uint64_t high_watermark{256};
  /// Observation window (virtual time in the simulator).
  Micros interval_us{50'000};
};

/// Windowed peak-backlog controller. observe() feeds it the instantaneous
/// backlog; once per interval it doubles/halves batch_max and
/// read_batch_max and steps pipeline_depth, clamped to the limits.
class AutoTuner {
 public:
  AutoTuner(TuningLimits limits, std::size_t batch0, std::size_t depth0,
            std::size_t read_batch0);

  /// Returns true when the window closed and a knob changed.
  bool observe(std::uint64_t backlog, Micros now);

  [[nodiscard]] std::size_t batch_max() const noexcept { return batch_; }
  [[nodiscard]] std::size_t pipeline_depth() const noexcept {
    return depth_;
  }
  [[nodiscard]] std::size_t read_batch_max() const noexcept {
    return read_batch_;
  }

  struct Stats {
    std::uint64_t windows{0};
    std::uint64_t grows{0};
    std::uint64_t shrinks{0};
    std::uint64_t peak_backlog{0};  // across the whole run
  };
  [[nodiscard]] Stats stats() const noexcept { return stats_; }

 private:
  TuningLimits limits_;
  std::size_t batch_;
  std::size_t depth_;
  std::size_t read_batch_;

  Micros window_end_{0};
  std::uint64_t window_peak_{0};
  Stats stats_;
};

}  // namespace sbft::runtime::runner
