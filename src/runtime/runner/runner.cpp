#include "runtime/runner/runner.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace sbft::runtime::runner {

namespace {

[[nodiscard]] Micros elapsed_us(
    std::chrono::steady_clock::time_point start) noexcept {
  return static_cast<Micros>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

// ------------------------------------------------------ SyncOrderedRunner

void SyncOrderedRunner::submit(Prologue work) {
  submitted_.add();
  const auto t0 = std::chrono::steady_clock::now();
  Epilogue epilogue = work();
  prologue_us_.record(elapsed_us(t0));
  const auto t1 = std::chrono::steady_clock::now();
  if (epilogue) epilogue();
  epilogue_us_.record(elapsed_us(t1));
  drained_.add();
}

void SyncOrderedRunner::drain() {}  // submit() already retired everything

RunnerStats SyncOrderedRunner::stats() const {
  RunnerStats s;
  s.submitted = submitted_.value();
  s.drained = drained_.value();
  s.queue_depth = 0;
  s.queue_peak = 0;
  s.prologue_us = prologue_us_.summarize();
  s.epilogue_us = epilogue_us_.summarize();
  return s;
}

void SyncOrderedRunner::reset_stats() {
  submitted_.reset();
  drained_.reset();
  prologue_us_.reset();
  epilogue_us_.reset();
}

// ------------------------------------------------------ SpinOrderedRunner

struct SpinOrderedRunner::Impl {
  // Slot life cycle: kFree -(submit, release)-> kQueued -(worker, release)->
  // kReady -(drain, after epilogue)-> kFree. The acquire/release pair on
  // state_ publishes task_/epilogue_ across threads; the mutex is only for
  // sleeping (never held while running user work).
  enum : int { kFree = 0, kQueued = 1, kReady = 2 };

  struct Slot {
    std::atomic<int> state{kFree};
    Prologue task;
    Epilogue epilogue;
  };

  explicit Impl(std::size_t workers, std::size_t capacity)
      : slots(capacity == 0 ? 1 : capacity) {
    threads.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      threads.emplace_back([this] { worker_loop(); });
    }
  }

  ~Impl() {
    drain_all();
    {
      const std::scoped_lock lock(mutex);
      stop = true;
    }
    work_cv.notify_all();
    for (auto& t : threads) t.join();
  }

  void submit(Prologue work) {
    Slot& slot = slots[tail % slots.size()];
    // Ring full: the drainer is the only thread that frees slots, and we
    // are the drainer — retire the head inline (natural backpressure, and
    // epilogue order is preserved because we only ever retire the head).
    while (slot.state.load(std::memory_order_acquire) != kFree) {
      drain_one();
    }
    slot.task = std::move(work);
    slot.state.store(kQueued, std::memory_order_release);
    const std::uint64_t idx = tail++;
    {
      const std::scoped_lock lock(mutex);
      pending.push_back(idx);
    }
    work_cv.notify_one();
    submitted.add();
    depth.add();
  }

  void drain_one() {
    Slot& slot = slots[head % slots.size()];
    // Brief spin: the parallel stage is short (a few us of crypto), so the
    // ready flag usually flips before a sleep is worth it.
    int state = slot.state.load(std::memory_order_acquire);
    for (int i = 0; i < 4096 && state != kReady; ++i) {
      state = slot.state.load(std::memory_order_acquire);
    }
    if (state != kReady) {
      std::unique_lock lock(mutex);
      done_cv.wait(lock, [&] {
        return slot.state.load(std::memory_order_acquire) == kReady;
      });
    }
    const auto t0 = std::chrono::steady_clock::now();
    if (slot.epilogue) slot.epilogue();
    epilogue_us.record(elapsed_us(t0));
    slot.epilogue = nullptr;
    slot.state.store(kFree, std::memory_order_release);
    ++head;
    depth.sub();
    drained.add();
  }

  void drain_all() {
    while (head != tail) drain_one();
  }

  void worker_loop() {
    while (true) {
      std::uint64_t idx = 0;
      {
        std::unique_lock lock(mutex);
        work_cv.wait(lock, [&] { return stop || !pending.empty(); });
        if (pending.empty()) return;  // stop && nothing queued
        idx = pending.front();
        pending.pop_front();
      }
      Slot& slot = slots[idx % slots.size()];
      Prologue task = std::move(slot.task);
      slot.task = nullptr;
      const auto t0 = std::chrono::steady_clock::now();
      Epilogue epilogue = task ? task() : Epilogue{};
      prologue_us.record(elapsed_us(t0));
      slot.epilogue = std::move(epilogue);
      slot.state.store(kReady, std::memory_order_release);
      // Lock-then-notify so a drainer checking the flag under the mutex
      // cannot miss the wakeup between its check and its wait.
      { const std::scoped_lock lock(mutex); }
      done_cv.notify_all();
    }
  }

  std::vector<Slot> slots;
  // head/tail are only touched by the owner (submit/drain caller); workers
  // receive slot indices through `pending` under the mutex.
  std::uint64_t head{0};
  std::uint64_t tail{0};

  std::mutex mutex;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  std::deque<std::uint64_t> pending;
  bool stop{false};

  std::vector<std::thread> threads;

  Counter submitted;
  Counter drained;
  Gauge depth;
  LatencyHistogram prologue_us;
  LatencyHistogram epilogue_us;
};

SpinOrderedRunner::SpinOrderedRunner(std::size_t workers,
                                     std::size_t capacity)
    : impl_(std::make_unique<Impl>(workers == 0 ? 1 : workers, capacity)) {}

SpinOrderedRunner::~SpinOrderedRunner() = default;

void SpinOrderedRunner::submit(Prologue work) {
  impl_->submit(std::move(work));
}

void SpinOrderedRunner::drain() { impl_->drain_all(); }

std::size_t SpinOrderedRunner::workers() const noexcept {
  return impl_->threads.size();
}

std::size_t SpinOrderedRunner::queue_depth() const noexcept {
  return static_cast<std::size_t>(impl_->depth.value());
}

RunnerStats SpinOrderedRunner::stats() const {
  RunnerStats s;
  s.submitted = impl_->submitted.value();
  s.drained = impl_->drained.value();
  s.queue_depth = impl_->depth.value();
  s.queue_peak = impl_->depth.peak();
  s.prologue_us = impl_->prologue_us.summarize();
  s.epilogue_us = impl_->epilogue_us.summarize();
  return s;
}

void SpinOrderedRunner::reset_stats() {
  impl_->submitted.reset();
  impl_->drained.reset();
  impl_->depth.reset();
  impl_->prologue_us.reset();
  impl_->epilogue_us.reset();
}

std::shared_ptr<OrderedRunner> make_runner(std::size_t workers) {
  if (workers == 0) return std::make_shared<SyncOrderedRunner>();
  return std::make_shared<SpinOrderedRunner>(workers);
}

}  // namespace sbft::runtime::runner
