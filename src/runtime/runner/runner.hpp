// Staged ordered-execution pipeline (ROADMAP "Parallel ordered execution
// runner"; dsnet's SpinOrderedRunner is the exemplar).
//
// A unit of work is split in two:
//
//   Prologue  — the parallelizable stage (hashing, MAC/signature
//               generation, AEAD sealing, read-only execution against a
//               stable snapshot). May run on any worker thread. It must
//               only touch data it owns (captured copies) or state that is
//               immutable while the runner holds work.
//   Epilogue  — the ordered-commit stage returned by the prologue. Runs on
//               the drain() caller in strict submission order, so state
//               mutations, reply-cache updates, and checkpoint cuts keep
//               byte-identical semantics to a serial execution.
//
// The contract with the sans-I/O engines: every submit() is drained before
// the enclosing handle()/tick() returns, so no worker activity ever spans
// two engine calls. Parallelism exists *within* one call — request i+1's
// ordered execution overlaps request i's reply MAC/serialize — which keeps
// the deterministic simulation byte-identical while letting the threaded
// runtime scale across cores.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

#include "common/stats.hpp"

namespace sbft::runtime::runner {

/// Ordered-commit stage: runs on the drain() caller, in submission order.
using Epilogue = std::function<void()>;
/// Parallel stage: runs on any worker, returns the ordered stage.
using Prologue = std::function<Epilogue()>;

/// Per-stage observability snapshot (queue-depth gauge + stage latencies).
struct RunnerStats {
  std::uint64_t submitted{0};
  std::uint64_t drained{0};
  std::uint64_t queue_depth{0};  // instantaneous (0 between engine calls)
  std::uint64_t queue_peak{0};   // high-water mark since reset
  LatencySummary prologue_us;    // parallel-stage service time
  LatencySummary epilogue_us;    // ordered-commit service time
};

/// Staged pipeline interface. Implementations guarantee epilogues run in
/// submission order on the thread that calls drain().
class OrderedRunner {
 public:
  virtual ~OrderedRunner() = default;

  virtual void submit(Prologue work) = 0;
  /// Runs every pending epilogue in submission order; returns with the
  /// queue empty.
  virtual void drain() = 0;

  [[nodiscard]] virtual std::size_t workers() const noexcept = 0;
  /// Units submitted but not yet retired (gc_footprint accounting).
  [[nodiscard]] virtual std::size_t queue_depth() const noexcept = 0;
  [[nodiscard]] virtual RunnerStats stats() const = 0;
  virtual void reset_stats() = 0;
};

/// Serial reference implementation: prologue and epilogue run inline on
/// the submitting thread. The deterministic default — the simulator and
/// every state-equivalence test measure the parallel runner against it.
class SyncOrderedRunner final : public OrderedRunner {
 public:
  SyncOrderedRunner() = default;

  void submit(Prologue work) override;
  void drain() override;

  [[nodiscard]] std::size_t workers() const noexcept override { return 0; }
  [[nodiscard]] std::size_t queue_depth() const noexcept override {
    return 0;
  }
  [[nodiscard]] RunnerStats stats() const override;
  void reset_stats() override;

 private:
  Counter submitted_;
  Counter drained_;
  LatencyHistogram prologue_us_;
  LatencyHistogram epilogue_us_;
};

/// Parallel implementation: N worker threads service prologues from a slot
/// ring; drain() retires slots head-to-tail on the caller, spinning
/// briefly on each slot's ready flag before falling back to a condition
/// variable (hence "spin"). TSan-clean: slot hand-off is acquire/release
/// on the per-slot state, wakeups go through the mutex.
class SpinOrderedRunner final : public OrderedRunner {
 public:
  explicit SpinOrderedRunner(std::size_t workers,
                             std::size_t capacity = 1024);
  ~SpinOrderedRunner() override;

  SpinOrderedRunner(const SpinOrderedRunner&) = delete;
  SpinOrderedRunner& operator=(const SpinOrderedRunner&) = delete;

  void submit(Prologue work) override;
  void drain() override;

  [[nodiscard]] std::size_t workers() const noexcept override;
  [[nodiscard]] std::size_t queue_depth() const noexcept override;
  [[nodiscard]] RunnerStats stats() const override;
  void reset_stats() override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// workers == 0 -> SyncOrderedRunner, otherwise SpinOrderedRunner(workers).
[[nodiscard]] std::shared_ptr<OrderedRunner> make_runner(std::size_t workers);

}  // namespace sbft::runtime::runner
