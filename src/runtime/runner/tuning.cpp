#include "runtime/runner/tuning.hpp"

namespace sbft::runtime::runner {

namespace {

[[nodiscard]] std::size_t clamp(std::size_t v, std::size_t lo,
                                std::size_t hi) noexcept {
  return std::max(lo, std::min(v, hi));
}

}  // namespace

AutoTuner::AutoTuner(TuningLimits limits, std::size_t batch0,
                     std::size_t depth0, std::size_t read_batch0)
    : limits_(limits),
      batch_(clamp(batch0, limits.batch_min, limits.batch_max)),
      // depth0 == 0 means "unbounded" in pbft::Config; start the tuned
      // pipeline wide open and let the controller pull it in.
      depth_(clamp(depth0 == 0 ? limits.depth_max : depth0, limits.depth_min,
                   limits.depth_max)),
      read_batch_(
          clamp(read_batch0, limits.read_batch_min, limits.read_batch_max)) {}

bool AutoTuner::observe(std::uint64_t backlog, Micros now) {
  window_peak_ = std::max(window_peak_, backlog);
  stats_.peak_backlog = std::max(stats_.peak_backlog, backlog);
  if (window_end_ == 0) {
    window_end_ = now + limits_.interval_us;
    return false;
  }
  if (now < window_end_) return false;

  ++stats_.windows;
  const std::uint64_t peak = window_peak_;
  window_peak_ = 0;
  window_end_ = now + limits_.interval_us;

  if (peak > limits_.high_watermark) {
    // Throughput regime: amortize protocol cost over bigger batches and
    // keep more of them in flight.
    const std::size_t batch = clamp(batch_ * 2, limits_.batch_min,
                                    limits_.batch_max);
    const std::size_t depth =
        clamp(depth_ + 1, limits_.depth_min, limits_.depth_max);
    const std::size_t read = clamp(read_batch_ * 2, limits_.read_batch_min,
                                   limits_.read_batch_max);
    const bool changed =
        batch != batch_ || depth != depth_ || read != read_batch_;
    batch_ = batch;
    depth_ = depth;
    read_batch_ = read;
    if (changed) ++stats_.grows;
    return changed;
  }
  if (peak < limits_.low_watermark) {
    // Latency regime: smaller batches cut queueing delay when the system
    // is far from saturation.
    const std::size_t batch = clamp(batch_ / 2, limits_.batch_min,
                                    limits_.batch_max);
    const std::size_t depth =
        clamp(depth_ > limits_.depth_min ? depth_ - 1 : depth_,
              limits_.depth_min, limits_.depth_max);
    const std::size_t read = clamp(read_batch_ / 2, limits_.read_batch_min,
                                   limits_.read_batch_max);
    const bool changed =
        batch != batch_ || depth != depth_ || read != read_batch_;
    batch_ = batch;
    depth_ = depth;
    read_batch_ = read;
    if (changed) ++stats_.shrinks;
    return changed;
  }
  return false;
}

}  // namespace sbft::runtime::runner
