// Virtual-time performance model.
//
// The correctness engines are exercised unmodified; what the model adds is
// RESOURCE OCCUPANCY: every message processed by a replica books service
// time on the threads that would do the work on real hardware, and the
// handler's outputs are released only when that service completes. Queueing
// delay, pipeline parallelism and thread saturation then emerge exactly as
// in a queueing network, and throughput/latency curves can be measured in
// virtual time — independent of the machine running the benchmark.
//
// The thread models mirror the paper's implementation (§6):
//  * PBFT:      4 crypto/serialization workers (tokio pool) + one serial
//               protocol thread.
//  * SplitBFT:  one broker (event-loop) thread + one ecall thread per
//               enclave; the "single thread" variant multiplexes all three
//               enclaves onto one ecall thread. Every ecall additionally
//               pays the SGX crossing cost from tee::CostModel (zero in
//               simulation mode).
//
// Service times are derived from a CostProfile of primitive costs
// (sign/verify/HMAC/AEAD/hash/serde/app), calibrated against the absolute
// numbers the paper reports for its Azure DC4s_v2 testbed (see
// EXPERIMENTS.md for the calibration).
#pragma once

#include <array>
#include <memory>

#include "common/stats.hpp"
#include "net/auth.hpp"
#include "runtime/pbft_cluster.hpp"
#include "runtime/splitbft_cluster.hpp"
#include "tee/cost_model.hpp"

namespace sbft::runtime {

struct CostProfile {
  // Asymmetric crypto (paper: ring ED25519 on Azure DC4s_v2).
  double sign_us{28};
  double verify_us{62};
  // A VerifyCache hit replaces the full verification with a hash lookup.
  double verify_cached_us{0.6};
  // Symmetric crypto.
  double hmac_us{1.1};
  double aead_base_us{1.0};
  double aead_us_per_kib{2.0};
  double hash_base_us{0.5};
  double hash_us_per_kib{1.6};
  // Marshalling (Rust serde in the paper; generously charged).
  double serde_base_us{0.5};
  double serde_us_per_kib{2.2};
  // Application execution per operation.
  double app_op_us{1.6};
  // Protocol bookkeeping per agreement message (log insert, certificate
  // tracking); client-request buffering is charged 1 us instead.
  double proto_msg_us{28.0};
  // Broker routing per message (SplitBFT event loop; queue hand-off only).
  double broker_msg_us{1.5};
  // Ledger: protected-FS block write (Merkle update + AEAD + ocall),
  // charged per block — sgx_tprotected_fs writes are expensive.
  double block_io_us{115};

  // SGX crossing model (simulation() for the paper's simulation-mode line).
  tee::CostModel sgx{tee::CostModel::sgx()};
};

/// A serially-occupied processing unit (thread) in virtual time.
struct Resource {
  Micros busy_until{0};
  std::uint64_t total_busy_us{0};

  /// Books `service_us` starting no earlier than `ready`; returns the
  /// completion time.
  Micros book(Micros ready, Micros service_us) {
    const Micros start = std::max(ready, busy_until);
    busy_until = start + service_us;
    total_busy_us += service_us;
    return busy_until;
  }
};

/// Per-ecall accounting for Figure 4 (mean ecall time per compartment).
struct EcallAccounting {
  std::uint64_t calls{0};
  std::uint64_t total_us{0};
  [[nodiscard]] double mean_us() const noexcept {
    return calls ? static_cast<double>(total_us) / static_cast<double>(calls)
                 : 0.0;
  }
};

/// Wraps a SplitBFT replica actor with the enclave-thread model.
class SplitPerfActor final : public Actor {
 public:
  /// `exec_workers` models the Execution enclave's staged runner: when
  /// > 1, reply seal/MAC/serialize and fast-path read service round-robin
  /// across that many in-enclave worker threads while app execution stays
  /// serial on the ecall thread — mirroring SpinOrderedRunner in the
  /// threaded runtime. <= 1 keeps the fully serial ecall model.
  SplitPerfActor(SimHarness& harness, std::shared_ptr<Actor> inner,
                 CostProfile profile, bool single_ecall_thread,
                 std::size_t exec_workers = 0);

  [[nodiscard]] std::vector<net::Envelope> handle(const net::Envelope& env,
                                                  Micros now) override;
  [[nodiscard]] std::vector<net::Envelope> tick(Micros now) override;

  [[nodiscard]] const EcallAccounting& ecall_stats(Compartment c) const {
    return ecall_stats_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] const Resource& resource(Compartment c) const;

  /// Ledger workloads: polls the number of persisted blocks so each block
  /// write is charged its protected-FS ocall cost on the Execution thread.
  void set_block_counter(std::function<std::uint64_t()> fn) {
    blocks_fn_ = std::move(fn);
  }

  /// Wires a compartment's VerifyCache counters into the model: with a
  /// sampler set, that compartment's signature-verification service time is
  /// the MEASURED mix of cache misses (verify_us) and hits
  /// (verify_cached_us) from the real engine, instead of the static
  /// per-message-type estimate.
  void set_auth_stats(Compartment c, std::function<net::VerifyStats()> fn) {
    auth_fns_[static_cast<std::size_t>(c)] = std::move(fn);
  }

 private:
  [[nodiscard]] Resource& resource_for(Compartment c);
  void release(std::vector<net::Envelope> outs, Micros at);

  SimHarness& harness_;
  std::shared_ptr<Actor> inner_;
  CostProfile profile_;
  bool single_thread_;
  std::function<std::uint64_t()> blocks_fn_;
  std::array<std::function<net::VerifyStats()>, kNumCompartments> auth_fns_{};
  Resource broker_;
  std::array<Resource, kNumCompartments> enclaves_;  // [prep, conf, exec]
  Resource shared_ecall_;                            // single-thread variant
  // Staged-runner workers inside the Execution enclave (empty = serial).
  std::vector<Resource> exec_workers_;
  std::array<EcallAccounting, kNumCompartments> ecall_stats_{};
};

/// Wraps a PBFT replica actor with the worker-pool + protocol-thread model.
class PbftPerfActor final : public Actor {
 public:
  PbftPerfActor(SimHarness& harness, std::shared_ptr<Actor> inner,
                CostProfile profile, std::size_t workers = 4);

  [[nodiscard]] std::vector<net::Envelope> handle(const net::Envelope& env,
                                                  Micros now) override;
  [[nodiscard]] std::vector<net::Envelope> tick(Micros now) override;

  /// Ledger workloads: plain (non-enclave) block persistence cost.
  void set_block_counter(std::function<std::uint64_t()> fn) {
    blocks_fn_ = std::move(fn);
  }

  /// Wires the replica's VerifyCache counters into the model (see
  /// SplitPerfActor::set_auth_stats).
  void set_auth_stats(std::function<net::VerifyStats()> fn) {
    auth_fn_ = std::move(fn);
  }

 private:
  void release(std::vector<net::Envelope> outs, Micros at);

  SimHarness& harness_;
  std::shared_ptr<Actor> inner_;
  CostProfile profile_;
  std::function<std::uint64_t()> blocks_fn_;
  std::function<net::VerifyStats()> auth_fn_;
  std::vector<Resource> workers_;
  Resource protocol_;
};

// ----------------------------------------------------------- measurement

/// Closed-loop client driver: re-submits immediately upon completion and
/// records per-operation latency (into a shared fixed-memory histogram)
/// while measuring.
class ClosedLoopDriver {
 public:
  using SubmitFn = std::function<std::vector<net::Envelope>(Micros now)>;

  ClosedLoopDriver(SimHarness& harness, SubmitFn submit,
                   LatencyHistogram& hist)
      : harness_(harness), submit_(std::move(submit)), hist_(hist) {}

  void start(Micros now);
  /// Called by the owning actor when the in-flight op completed.
  void completed(Micros now);
  void set_measuring(bool measuring) noexcept { measuring_ = measuring; }

  [[nodiscard]] std::uint64_t completed_ops() const noexcept { return ops_; }

 private:
  SimHarness& harness_;
  SubmitFn submit_;
  LatencyHistogram& hist_;
  Micros submitted_at_{0};
  bool measuring_{false};
  std::uint64_t ops_{0};
};

struct LoadResult {
  double ops_per_sec{0};
  double mean_latency_ms{0};
  LatencySummary latency;
};

}  // namespace sbft::runtime
