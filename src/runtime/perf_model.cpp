#include "runtime/perf_model.hpp"

#include <algorithm>
#include <set>

#include "crypto/sha256.hpp"
#include "splitbft/messages.hpp"

namespace sbft::runtime {

namespace {

using pbft::MsgType;

[[nodiscard]] double kib(std::size_t bytes) {
  return static_cast<double>(bytes) / 1024.0;
}

[[nodiscard]] double serde_cost(const CostProfile& p, std::size_t bytes) {
  return p.serde_base_us + p.serde_us_per_kib * kib(bytes);
}

[[nodiscard]] double hash_cost(const CostProfile& p, std::size_t bytes) {
  return p.hash_base_us + p.hash_us_per_kib * kib(bytes);
}

[[nodiscard]] double aead_cost(const CostProfile& p, std::size_t bytes) {
  return p.aead_base_us + p.aead_us_per_kib * kib(bytes);
}

/// Number of requests in a (serialized) SplitPrePrepare's batch.
[[nodiscard]] std::size_t split_batch_size(ByteView payload) {
  const auto pp = splitbft::SplitPrePrepare::deserialize(payload);
  if (!pp || !pp->has_batch) return 0;
  const auto batch = pbft::RequestBatch::deserialize(pp->batch);
  return batch ? batch->requests.size() : 0;
}

[[nodiscard]] std::size_t pbft_batch_size(ByteView payload) {
  const auto pp = pbft::PrePrepare::deserialize(payload);
  if (!pp) return 0;
  const auto batch = pbft::RequestBatch::deserialize(pp->batch);
  return batch ? batch->requests.size() : 0;
}

/// Signing cost is paid once per DISTINCT signed message; broadcast copies
/// of the same envelope reuse the signature.
class DistinctSignTracker {
 public:
  [[nodiscard]] bool first(const net::Envelope& env) {
    if (env.signature.empty()) return false;
    // env.digest() commits to (type || payload) and is memoized on the
    // envelope — broadcast copies share it, so tracking a copy costs a set
    // insert, not a hash of the payload.
    return seen_.insert(env.digest()).second;
  }

 private:
  std::set<Digest> seen_;
};

}  // namespace

// ------------------------------------------------------------ SplitBFT

SplitPerfActor::SplitPerfActor(SimHarness& harness,
                               std::shared_ptr<Actor> inner,
                               CostProfile profile, bool single_ecall_thread,
                               std::size_t exec_workers)
    : harness_(harness),
      inner_(std::move(inner)),
      profile_(profile),
      single_thread_(single_ecall_thread),
      exec_workers_(exec_workers > 1 ? exec_workers : 0) {}

Resource& SplitPerfActor::resource_for(Compartment c) {
  if (single_thread_) return shared_ecall_;
  return enclaves_[static_cast<std::size_t>(c)];
}

const Resource& SplitPerfActor::resource(Compartment c) const {
  if (single_thread_) return shared_ecall_;
  return enclaves_[static_cast<std::size_t>(c)];
}

void SplitPerfActor::release(std::vector<net::Envelope> outs, Micros at) {
  harness_.scheduler().at(at, [this, outs = std::move(outs)] {
    harness_.inject(outs);
  });
}

std::vector<net::Envelope> SplitPerfActor::handle(const net::Envelope& env,
                                                  Micros now) {
  // Run the real engine immediately; outputs are released when the modeled
  // service completes.
  const std::uint64_t blocks_before = blocks_fn_ ? blocks_fn_() : 0;
  std::array<net::VerifyStats, kNumCompartments> auth_before{};
  for (std::size_t c = 0; c < kNumCompartments; ++c) {
    if (auth_fns_[c]) auth_before[c] = auth_fns_[c]();
  }
  std::vector<net::Envelope> outs = inner_->handle(env, now);
  const std::uint64_t blocks_written =
      blocks_fn_ ? blocks_fn_() - blocks_before : 0;

  const auto type = static_cast<MsgType>(env.type);
  const CostProfile& p = profile_;

  // --- per-compartment service composed from input validation work ---
  std::array<double, kNumCompartments> service{};  // [prep, conf, exec]
  std::array<std::size_t, kNumCompartments> ecall_bytes_in{};
  std::array<bool, kNumCompartments> involved{};
  // Signature verifications per compartment, kept separate so a wired-up
  // VerifyCache sampler can replace the static estimate with the measured
  // hit/miss mix.
  std::array<double, kNumCompartments> verify_units{};
  const auto add = [&](Compartment c, double us) {
    service[static_cast<std::size_t>(c)] += us;
    involved[static_cast<std::size_t>(c)] = true;
  };
  const auto add_verify = [&](Compartment c, double units) {
    verify_units[static_cast<std::size_t>(c)] += units;
    involved[static_cast<std::size_t>(c)] = true;
  };
  const auto add_in_bytes = [&](Compartment c, std::size_t bytes) {
    ecall_bytes_in[static_cast<std::size_t>(c)] += bytes;
    involved[static_cast<std::size_t>(c)] = true;
  };

  double broker_us = p.broker_msg_us + serde_cost(p, env.payload.size());

  switch (type) {
    case MsgType::Request:
      // Batching happens on the broker; the Preparation ecall (if a batch
      // was cut) is accounted through the PrePrepare outputs below.
      break;
    case MsgType::ReadRequest:
      // Read fast path: the broker queues the read for a coalesced
      // Execution ecall (like request batching, the ecall is accounted
      // when the ReadReply outputs emerge — one crossing per batch).
      break;
    case MsgType::PrePrepare: {
      const std::size_t k = split_batch_size(env.payload);
      // Preparation: header sig + per-request client MACs + batch digest.
      add(Compartment::Preparation,
          static_cast<double>(k) * p.hmac_us +
              hash_cost(p, env.payload.size()));
      add_verify(Compartment::Preparation, 1);
      add_in_bytes(Compartment::Preparation, env.payload.size());
      // Confirmation sees only the header.
      add_verify(Compartment::Confirmation, 1);
      add_in_bytes(Compartment::Confirmation, 64);
      // Execution stores the full batch (sig + digest check) and, at
      // execution time, re-authenticates and AEAD-opens every request
      // (defence in depth in the engine — charge what the code does).
      add(Compartment::Execution,
          hash_cost(p, env.payload.size()) +
              static_cast<double>(k) * (p.hmac_us + p.aead_base_us));
      add_verify(Compartment::Execution, 1);
      add_in_bytes(Compartment::Execution, env.payload.size());
      break;
    }
    case MsgType::Prepare:
      add_verify(Compartment::Confirmation, 1);
      add_in_bytes(Compartment::Confirmation, env.payload.size());
      break;
    case MsgType::Commit:
      add_verify(Compartment::Execution, 1);
      add_in_bytes(Compartment::Execution, env.payload.size());
      break;
    case MsgType::Checkpoint:
      for (const Compartment c :
           {Compartment::Preparation, Compartment::Confirmation,
            Compartment::Execution}) {
        add_verify(c, 1);
        add_in_bytes(c, env.payload.size());
      }
      break;
    case MsgType::ViewChange:
      add_verify(Compartment::Preparation, 4);
      add_in_bytes(Compartment::Preparation, env.payload.size());
      break;
    case MsgType::NewView:
      add_verify(Compartment::Preparation, 8);
      add_verify(Compartment::Confirmation, 3);
      add_verify(Compartment::Execution, 3);
      for (const Compartment c :
           {Compartment::Preparation, Compartment::Confirmation,
            Compartment::Execution}) {
        add_in_bytes(c, env.payload.size());
      }
      break;
    case MsgType::StateRequest:
      add_verify(Compartment::Execution, 1);
      add_in_bytes(Compartment::Execution, env.payload.size());
      break;
    case MsgType::StateResponse:
      add(Compartment::Execution, aead_cost(p, env.payload.size()));
      add_verify(Compartment::Execution, 3);
      add_in_bytes(Compartment::Execution, env.payload.size());
      break;
    case MsgType::AttestRequest:
      add(Compartment::Execution, p.sign_us);  // quote issuance
      add_in_bytes(Compartment::Execution, env.payload.size());
      break;
    case MsgType::SessionInit:
      // X25519 + KDF + AEAD open: dominated by the DH scalar mult (charged
      // in verify-equivalents, but NOT signature verification — a sampler
      // never replaces this).
      add(Compartment::Execution, 4 * p.verify_us);
      add_in_bytes(Compartment::Execution, env.payload.size());
      break;
    default:
      break;
  }

  // Resolve signature-verification work: measured hit/miss mix where a
  // cache sampler is wired up, static estimate otherwise.
  for (std::size_t c = 0; c < kNumCompartments; ++c) {
    if (auth_fns_[c]) {
      const net::VerifyStats after = auth_fns_[c]();
      const double full =
          static_cast<double>((after.misses - auth_before[c].misses) +
                              (after.failures - auth_before[c].failures));
      const double hits =
          static_cast<double>(after.hits - auth_before[c].hits);
      const double us = full * p.verify_us + hits * p.verify_cached_us;
      if (us > 0) add(static_cast<Compartment>(c), us);
    } else if (verify_units[c] > 0) {
      add(static_cast<Compartment>(c), verify_units[c] * p.verify_us);
    }
  }

  // --- service from produced outputs, attributed by message type ---
  DistinctSignTracker signs;
  std::array<std::size_t, kNumCompartments> ecall_bytes_out{};
  std::size_t replies = 0;
  // Staged-runner split: seal/MAC/serialize and read service round-robin
  // over the exec workers; app execution stays on the serial ecall thread.
  std::vector<double> exec_stage(exec_workers_.size(), 0.0);
  std::size_t exec_rr = 0;
  const auto stage_exec = [&](double us) {
    exec_stage[exec_rr++ % exec_stage.size()] += us;
  };
  for (const auto& out : outs) {
    const auto out_type = static_cast<MsgType>(out.type);
    broker_us += p.broker_msg_us;  // event-loop send handling
    switch (out_type) {
      case MsgType::PrePrepare: {
        if (signs.first(out)) {
          const std::size_t k = split_batch_size(out.payload);
          // Primary path: batch MAC checks + digest + header signature.
          add(Compartment::Preparation,
              p.sign_us + static_cast<double>(k) * p.hmac_us +
                  hash_cost(p, out.payload.size()) +
                  serde_cost(p, out.payload.size()));
          add_in_bytes(Compartment::Preparation, out.payload.size());
        }
        ecall_bytes_out[static_cast<std::size_t>(Compartment::Preparation)] +=
            out.payload.size();
        break;
      }
      case MsgType::Prepare:
        if (signs.first(out)) add(Compartment::Preparation, p.sign_us);
        ecall_bytes_out[static_cast<std::size_t>(Compartment::Preparation)] +=
            out.payload.size();
        break;
      case MsgType::Commit:
        if (signs.first(out)) add(Compartment::Confirmation, p.sign_us);
        ecall_bytes_out[static_cast<std::size_t>(Compartment::Confirmation)] +=
            out.payload.size();
        break;
      case MsgType::Reply: {
        ++replies;
        if (exec_workers_.empty()) {
          add(Compartment::Execution,
              p.app_op_us + aead_cost(p, out.payload.size()) + p.hmac_us +
                  serde_cost(p, out.payload.size()));
        } else {
          add(Compartment::Execution, p.app_op_us);
          stage_exec(aead_cost(p, out.payload.size()) + p.hmac_us +
                     serde_cost(p, out.payload.size()));
        }
        ecall_bytes_out[static_cast<std::size_t>(Compartment::Execution)] +=
            out.payload.size();
        break;
      }
      case MsgType::ReadReply: {
        // One served read: request MAC check + AEAD open, the app read,
        // the reply MAC and marshalling — and the value seal ONLY on the
        // designated responder (digest-only replies skip the AEAD, the
        // bandwidth/CPU saving of reply-digest suppression).
        double read_us = p.hmac_us + aead_cost(p, 64) + p.app_op_us +
                         p.hmac_us + serde_cost(p, out.payload.size());
        const auto rr = pbft::ReadReply::deserialize(out.payload);
        if (rr && rr->has_result) {
          read_us += aead_cost(p, out.payload.size());
        }
        if (exec_workers_.empty()) {
          add(Compartment::Execution, read_us);
        } else {
          // Reads are fully parallelizable (stable-snapshot execution);
          // the ecall thread only pays the crossing.
          add(Compartment::Execution, 0.0);
          stage_exec(read_us);
        }
        ecall_bytes_out[static_cast<std::size_t>(Compartment::Execution)] +=
            out.payload.size();
        break;
      }
      case MsgType::Checkpoint:
        if (signs.first(out)) {
          add(Compartment::Execution,
              p.sign_us + hash_cost(p, 2048));  // snapshot digest
        }
        ecall_bytes_out[static_cast<std::size_t>(Compartment::Execution)] +=
            out.payload.size();
        break;
      case MsgType::ViewChange:
        if (signs.first(out)) add(Compartment::Confirmation, p.sign_us);
        break;
      case MsgType::NewView:
        if (signs.first(out)) add(Compartment::Preparation, 4 * p.sign_us);
        break;
      case MsgType::StateResponse:
        if (signs.first(out)) {
          add(Compartment::Execution,
              p.sign_us + aead_cost(p, out.payload.size()));
        }
        break;
      case MsgType::AttestReport:
      case MsgType::SessionAck:
        add(Compartment::Execution, p.hmac_us);
        break;
      default:
        break;
    }
  }
  (void)replies;
  // Each persisted ledger block pays the protected-FS seal + ocall.
  if (blocks_written > 0) {
    add(Compartment::Execution,
        static_cast<double>(blocks_written) * p.block_io_us);
  }

  // --- book the pipeline: broker first, then the enclave ecalls ---
  const Micros broker_done =
      broker_.book(now, static_cast<Micros>(broker_us));
  Micros done = broker_done;
  for (std::size_t c = 0; c < kNumCompartments; ++c) {
    if (!involved[c]) continue;
    const Micros crossing = profile_.sgx.crossing_cost(ecall_bytes_in[c],
                                                       ecall_bytes_out[c]);
    const Micros service_us =
        static_cast<Micros>(service[c]) + crossing;
    Resource& r = resource_for(static_cast<Compartment>(c));
    const Micros end = r.book(broker_done, service_us);
    ecall_stats_[c].calls += 1;
    ecall_stats_[c].total_us += service_us;
    done = std::max(done, end);
  }
  // Book the staged parallel work across the exec workers; each bucket
  // starts at broker_done, overlapping the ordered stage exactly as the
  // runner pipelines request i+1's execution with request i's seal.
  for (const double bucket_us : exec_stage) {
    if (bucket_us <= 0.5) continue;
    Resource& w = *std::min_element(
        exec_workers_.begin(), exec_workers_.end(),
        [](const Resource& a, const Resource& b) {
          return a.busy_until < b.busy_until;
        });
    done = std::max(done, w.book(broker_done,
                                 static_cast<Micros>(bucket_us)));
  }

  if (outs.empty()) return {};
  release(std::move(outs), done);
  return {};
}

std::vector<net::Envelope> SplitPerfActor::tick(Micros now) {
  // Timer work (batch cut, read-batch cut) may emit PrePrepares or
  // ReadReplies — run it through the same accounting path as handle().
  std::vector<net::Envelope> outs = inner_->tick(now);
  if (outs.empty()) return {};

  DistinctSignTracker signs;
  double prep_us = 0;
  double exec_us = 0;
  std::size_t prep_bytes = 0;
  std::size_t exec_bytes = 0;
  double broker_us = profile_.broker_msg_us;
  std::vector<double> exec_stage(exec_workers_.size(), 0.0);
  std::size_t exec_rr = 0;
  for (const auto& out : outs) {
    broker_us += profile_.broker_msg_us;
    const auto type = static_cast<MsgType>(out.type);
    if (type == MsgType::PrePrepare && signs.first(out)) {
      const std::size_t k = split_batch_size(out.payload);
      prep_us += profile_.sign_us +
                 static_cast<double>(k) * profile_.hmac_us +
                 hash_cost(profile_, out.payload.size()) +
                 serde_cost(profile_, out.payload.size());
      prep_bytes += out.payload.size();
    } else if (type == MsgType::ReadReply) {
      // Coalesced fast-path reads served from the read-batch timer: same
      // per-read cost as in handle(), one crossing for the whole batch.
      // With a staged runner each read lands on a different worker.
      double read_us = profile_.hmac_us + aead_cost(profile_, 64) +
                       profile_.app_op_us + profile_.hmac_us +
                       serde_cost(profile_, out.payload.size());
      const auto rr = pbft::ReadReply::deserialize(out.payload);
      if (rr && rr->has_result) {
        read_us += aead_cost(profile_, out.payload.size());
      }
      if (exec_workers_.empty()) {
        exec_us += read_us;
      } else {
        exec_stage[exec_rr++ % exec_stage.size()] += read_us;
      }
      exec_bytes += out.payload.size();
    }
  }
  const Micros broker_done = broker_.book(now, static_cast<Micros>(broker_us));
  Micros done = broker_done;
  if (prep_us > 0) {
    const Micros crossing = profile_.sgx.crossing_cost(prep_bytes, prep_bytes);
    Resource& r = resource_for(Compartment::Preparation);
    done = r.book(broker_done, static_cast<Micros>(prep_us) + crossing);
    auto& stats =
        ecall_stats_[static_cast<std::size_t>(Compartment::Preparation)];
    stats.calls += 1;
    stats.total_us += static_cast<Micros>(prep_us) + crossing;
  }
  const bool exec_staged = exec_rr > 0;
  if (exec_us > 0 || exec_staged) {
    const Micros crossing =
        profile_.sgx.crossing_cost(exec_bytes, exec_bytes);
    Resource& r = resource_for(Compartment::Execution);
    const Micros end =
        r.book(broker_done, static_cast<Micros>(exec_us) + crossing);
    done = std::max(done, end);
    for (const double bucket_us : exec_stage) {
      if (bucket_us <= 0.5) continue;
      Resource& w = *std::min_element(
          exec_workers_.begin(), exec_workers_.end(),
          [](const Resource& a, const Resource& b) {
            return a.busy_until < b.busy_until;
          });
      done = std::max(done, w.book(broker_done,
                                   static_cast<Micros>(bucket_us)));
    }
    auto& stats =
        ecall_stats_[static_cast<std::size_t>(Compartment::Execution)];
    stats.calls += 1;
    stats.total_us += static_cast<Micros>(exec_us) + crossing;
  }
  release(std::move(outs), done);
  return {};
}

// ---------------------------------------------------------------- PBFT

PbftPerfActor::PbftPerfActor(SimHarness& harness, std::shared_ptr<Actor> inner,
                             CostProfile profile, std::size_t workers)
    : harness_(harness),
      inner_(std::move(inner)),
      profile_(profile),
      workers_(workers) {}

void PbftPerfActor::release(std::vector<net::Envelope> outs, Micros at) {
  harness_.scheduler().at(at, [this, outs = std::move(outs)] {
    harness_.inject(outs);
  });
}

std::vector<net::Envelope> PbftPerfActor::handle(const net::Envelope& env,
                                                 Micros now) {
  const std::uint64_t blocks_before = blocks_fn_ ? blocks_fn_() : 0;
  const net::VerifyStats auth_before =
      auth_fn_ ? auth_fn_() : net::VerifyStats{};
  std::vector<net::Envelope> outs = inner_->handle(env, now);
  const std::uint64_t blocks_written =
      blocks_fn_ ? blocks_fn_() - blocks_before : 0;

  const CostProfile& p = profile_;
  const auto type = static_cast<MsgType>(env.type);

  // Inbound crypto/marshalling (parallelized across the worker pool).
  double worker_in_us = serde_cost(p, env.payload.size());
  // Signature verifications, kept separate so the VerifyCache sampler can
  // replace the static per-type estimate with the measured hit/miss mix.
  double verify_units = 0;
  // Agreement messages pay protocol bookkeeping; buffering a client
  // request (or picking up a fast read) is a cheap queue append — the
  // read's execution cost is charged on its ReadReply output.
  double protocol_us =
      type == MsgType::Request || type == MsgType::ReadRequest
          ? 1.0
          : p.proto_msg_us;
  switch (type) {
    case MsgType::Request:
    case MsgType::ReadRequest:
      worker_in_us += p.hmac_us;
      break;
    case MsgType::PrePrepare: {
      const std::size_t k = pbft_batch_size(env.payload);
      verify_units = 1;
      worker_in_us += static_cast<double>(k) * p.hmac_us +
                      hash_cost(p, env.payload.size());
      break;
    }
    case MsgType::Prepare:
    case MsgType::Commit:
    case MsgType::Checkpoint:
      verify_units = 1;
      break;
    case MsgType::ViewChange:
      verify_units = 4;
      break;
    case MsgType::NewView:
      verify_units = 8;
      break;
    case MsgType::StateResponse:
      verify_units = 3;
      break;
    default:
      break;
  }
  if (auth_fn_) {
    const net::VerifyStats after = auth_fn_();
    const double full =
        static_cast<double>((after.misses - auth_before.misses) +
                            (after.failures - auth_before.failures));
    const double hits = static_cast<double>(after.hits - auth_before.hits);
    worker_in_us += full * p.verify_us + hits * p.verify_cached_us;
  } else {
    worker_in_us += verify_units * p.verify_us;
  }

  // Outbound crypto (signatures once per distinct message; reply auth and
  // marshalling parallelized per the paper). Mirroring the staged runner,
  // each output's worker cost round-robins into one bucket per worker so
  // reply MAC/serialize genuinely spreads across the pool — with one
  // worker the buckets collapse to the old single booking.
  DistinctSignTracker signs;
  std::vector<double> out_stage(workers_.size(), 0.0);
  std::size_t out_rr = 0;
  for (const auto& out : outs) {
    const auto out_type = static_cast<MsgType>(out.type);
    double out_us = serde_cost(p, 64);  // per-send framing
    switch (out_type) {
      case MsgType::PrePrepare: {
        if (signs.first(out)) {
          const std::size_t k = pbft_batch_size(out.payload);
          out_us += p.sign_us + static_cast<double>(k) * p.hmac_us +
                    hash_cost(p, out.payload.size()) +
                    serde_cost(p, out.payload.size());
        }
        break;
      }
      case MsgType::Prepare:
      case MsgType::Commit:
      case MsgType::Checkpoint:
      case MsgType::ViewChange:
      case MsgType::StateResponse:
        if (signs.first(out)) out_us += p.sign_us;
        break;
      case MsgType::NewView:
        if (signs.first(out)) out_us += 4 * p.sign_us;
        break;
      case MsgType::Reply:
      case MsgType::ReadReply:
        // Execution itself is protocol-serial (reads execute against the
        // same committed state); reply auth + marshalling run on the
        // workers.
        protocol_us += p.app_op_us;
        out_us += p.hmac_us + serde_cost(p, out.payload.size());
        break;
      default:
        break;
    }
    out_stage[out_rr++ % out_stage.size()] += out_us;
  }

  // Plain (non-enclave) block persistence: cheaper than the protected FS.
  if (blocks_written > 0) {
    protocol_us += static_cast<double>(blocks_written) * p.block_io_us * 0.4;
  }

  // Pipeline: least-busy worker (inbound) -> protocol thread -> worker.
  const auto least_busy = [this] {
    return &*std::min_element(
        workers_.begin(), workers_.end(),
        [](const Resource& a, const Resource& b) {
          return a.busy_until < b.busy_until;
        });
  };
  const Micros in_done =
      least_busy()->book(now, static_cast<Micros>(worker_in_us));
  const Micros proto_done =
      protocol_.book(in_done, static_cast<Micros>(protocol_us));
  Micros done = proto_done;
  for (const double bucket_us : out_stage) {
    if (bucket_us <= 0.5) continue;
    done = std::max(
        done, least_busy()->book(proto_done, static_cast<Micros>(bucket_us)));
  }

  if (outs.empty()) return {};
  release(std::move(outs), done);
  return {};
}

std::vector<net::Envelope> PbftPerfActor::tick(Micros now) {
  std::vector<net::Envelope> outs = inner_->tick(now);
  if (outs.empty()) return {};

  DistinctSignTracker signs;
  double worker_us = 0;
  double protocol_us = 0;
  for (const auto& out : outs) {
    if (static_cast<MsgType>(out.type) == MsgType::PrePrepare &&
        signs.first(out)) {
      const std::size_t k = pbft_batch_size(out.payload);
      worker_us += profile_.sign_us +
                   static_cast<double>(k) * profile_.hmac_us +
                   hash_cost(profile_, out.payload.size()) +
                   serde_cost(profile_, out.payload.size());
      protocol_us += profile_.proto_msg_us;
    }
  }
  const auto least_busy = [this] {
    return &*std::min_element(
        workers_.begin(), workers_.end(),
        [](const Resource& a, const Resource& b) {
          return a.busy_until < b.busy_until;
        });
  };
  const Micros w = least_busy()->book(now, static_cast<Micros>(worker_us));
  const Micros done = protocol_.book(w, static_cast<Micros>(protocol_us));
  release(std::move(outs), done);
  return {};
}

// ---------------------------------------------------------- closed loop

void ClosedLoopDriver::start(Micros now) {
  submitted_at_ = now;
  harness_.inject(submit_(now));
}

void ClosedLoopDriver::completed(Micros now) {
  if (measuring_) {
    ++ops_;
    hist_.record(now - submitted_at_);
  }
  submitted_at_ = now;
  harness_.inject(submit_(now));
}

}  // namespace sbft::runtime
