#include "runtime/bench_harness.hpp"

#include <cstdio>

#include "apps/kv_store.hpp"
#include "apps/ledger.hpp"
#include "crypto/hmac.hpp"

namespace sbft::runtime {

const char* to_string(System s) noexcept {
  switch (s) {
    case System::Pbft:
      return "PBFT";
    case System::Splitbft:
      return "SplitBFT";
    case System::SplitbftSim:
      return "SplitBFT-Simulation";
    case System::SplitbftSingle:
      return "SplitBFT-SingleThread";
  }
  return "?";
}

const char* to_string(Workload w) noexcept {
  switch (w) {
    case Workload::KvStore:
      return "KVS";
    case Workload::Blockchain:
      return "Blockchain";
  }
  return "?";
}

namespace {

/// 10-byte operation matching the paper's payload size.
[[nodiscard]] Bytes bench_operation(Workload workload, ClientId client) {
  if (workload == Workload::KvStore) {
    Bytes key;
    for (int i = 0; i < 4; ++i) {
      key.push_back(static_cast<std::uint8_t>(client >> (8 * i)));
    }
    return apps::kv::encode_put(key, to_bytes("0123456789"));
  }
  Bytes tx = to_bytes("tx");
  for (int i = 0; i < 8; ++i) {
    tx.push_back(static_cast<std::uint8_t>(client >> (8 * (i % 4))));
  }
  return tx;
}

[[nodiscard]] pbft::Config bench_protocol_config(bool batched) {
  pbft::Config config;
  config.n = 4;
  config.f = 1;
  config.batch_max = batched ? 200 : 1;
  config.batch_timeout_us = 10'000;
  config.checkpoint_interval = batched ? 50 : 500;
  config.watermark_window = batched ? 400 : 4000;
  config.request_timeout_us = 2'000'000;  // saturation must not trigger VCs
  return config;
}

class PbftLoadClient final : public Actor {
 public:
  PbftLoadClient(SimHarness& harness, pbft::Config config, ClientId id,
                 const pbft::ClientDirectory& directory, Bytes operation,
                 LatencyHistogram& hist)
      : client_(config, id, directory, /*retry=*/4'000'000),
        operation_(std::move(operation)),
        driver_(harness,
                [this](Micros now) { return client_.submit(operation_, now); },
                hist) {}

  [[nodiscard]] std::vector<net::Envelope> handle(const net::Envelope& env,
                                                  Micros now) override {
    std::vector<net::Envelope> out;
    if (client_.on_reply(env, now, out)) driver_.completed(now);
    return out;
  }
  [[nodiscard]] std::vector<net::Envelope> tick(Micros now) override {
    return client_.tick(now);
  }
  [[nodiscard]] ClosedLoopDriver& driver() noexcept { return driver_; }

 private:
  pbft::Client client_;
  Bytes operation_;
  ClosedLoopDriver driver_;
};

class SplitLoadClient final : public Actor {
 public:
  SplitLoadClient(SimHarness& harness, pbft::Config config, ClientId id,
                  const pbft::ClientDirectory& directory,
                  splitbft::SplitClient::TrustAnchors anchors,
                  std::uint64_t seed, Bytes operation,
                  LatencyHistogram& hist)
      : client_(config, id, directory, anchors, seed, /*retry=*/4'000'000),
        operation_(std::move(operation)),
        driver_(harness,
                [this](Micros now) { return client_.submit(operation_, now); },
                hist) {}

  [[nodiscard]] std::vector<net::Envelope> handle(const net::Envelope& env,
                                                  Micros now) override {
    if (env.type == pbft::tag(pbft::MsgType::Reply) ||
        env.type == pbft::tag(pbft::MsgType::ReadReply)) {
      std::vector<net::Envelope> out;
      if (client_.on_reply(env, now, out)) driver_.completed(now);
      return out;
    }
    return client_.on_message(env, now);
  }
  [[nodiscard]] std::vector<net::Envelope> tick(Micros now) override {
    return client_.tick(now);
  }
  [[nodiscard]] splitbft::SplitClient& client() noexcept { return client_; }
  [[nodiscard]] ClosedLoopDriver& driver() noexcept { return driver_; }

 private:
  splitbft::SplitClient client_;
  Bytes operation_;
  ClosedLoopDriver driver_;
};

[[nodiscard]] crypto::Key32 bench_session_key(std::uint64_t seed,
                                              ClientId client) {
  Bytes context(4);
  for (int i = 0; i < 4; ++i) {
    context[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(client >> (8 * i));
  }
  Bytes master(8);
  for (int i = 0; i < 8; ++i) {
    master[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(seed >> (8 * i));
  }
  return crypto::derive_key(master, "bench-session", context);
}

[[nodiscard]] BenchResult run_pbft(const BenchPoint& point) {
  PbftClusterOptions options;
  options.config = bench_protocol_config(point.batched);
  options.seed = point.seed;
  options.scheme = crypto::Scheme::HmacShared;
  options.link_params.min_delay_us = 60;
  options.link_params.max_delay_us = 140;

  apps::AppFactory app_factory;
  if (point.workload == Workload::KvStore) {
    app_factory = [] { return std::make_unique<apps::KvStore>(); };
  } else {
    app_factory = [] { return std::make_unique<apps::Ledger>(5); };
  }
  PbftCluster cluster(options, app_factory);

  // Interpose the performance model on every replica.
  std::vector<std::shared_ptr<PbftPerfActor>> perf;
  for (ReplicaId r = 0; r < options.config.n; ++r) {
    auto actor = std::make_shared<PbftPerfActor>(
        cluster.harness(), cluster.replica_actor(r), point.profile);
    {
      // Charge the measured verify-cache hit/miss mix instead of static
      // per-message estimates.
      pbft::Replica* replica = &cluster.replica(r);
      actor->set_auth_stats([replica] { return replica->auth().stats(); });
    }
    if (point.workload == Workload::Blockchain) {
      pbft::Replica* replica = &cluster.replica(r);
      actor->set_block_counter([replica] {
        return dynamic_cast<const apps::Ledger&>(replica->app()).height();
      });
    }
    cluster.harness().replace_actor(principal::pbft_replica(r), actor);
    perf.push_back(std::move(actor));
  }

  const std::uint32_t total_clients = point.clients * point.outstanding;
  LatencyHistogram hist;
  std::vector<std::shared_ptr<PbftLoadClient>> clients;
  for (std::uint32_t i = 0; i < total_clients; ++i) {
    const ClientId id = kFirstClientId + i;
    auto client = std::make_shared<PbftLoadClient>(
        cluster.harness(), options.config, id, cluster.directory(),
        bench_operation(point.workload, id), hist);
    cluster.harness().add_actor(principal::client(id), client,
                                /*tick_interval_us=*/500'000);
    clients.push_back(std::move(client));
  }

  // Staggered starts avoid lock-step batches.
  for (std::size_t i = 0; i < clients.size(); ++i) {
    auto client = clients[i];
    cluster.harness().scheduler().at(
        static_cast<Micros>(i * 13),
        [client, &cluster] { client->driver().start(cluster.harness().now()); });
  }

  cluster.harness().run_for(point.warmup_us);
  for (auto& client : clients) client->driver().set_measuring(true);
  cluster.harness().run_for(point.measure_us);

  BenchResult result;
  for (auto& client : clients) {
    client->driver().set_measuring(false);
    result.completed_ops += client->driver().completed_ops();
  }
  result.ops_per_sec = static_cast<double>(result.completed_ops) /
                       (static_cast<double>(point.measure_us) / 1e6);
  result.latency = hist.summarize();
  result.mean_latency_ms = result.latency.mean_us / 1000.0;
  return result;
}

[[nodiscard]] BenchResult run_splitbft(const BenchPoint& point) {
  SplitClusterOptions options;
  options.config = bench_protocol_config(point.batched);
  options.seed = point.seed;
  options.scheme = crypto::Scheme::HmacShared;
  options.link_params.min_delay_us = 60;
  options.link_params.max_delay_us = 140;

  CostProfile profile = point.profile;
  if (point.system == System::SplitbftSim) {
    profile.sgx = tee::CostModel::simulation();
  }
  options.cost_model = profile.sgx;

  splitbft::ExecAppFactory app_factory;
  if (point.workload == Workload::KvStore) {
    app_factory =
        splitbft::plain_app([] { return std::make_unique<apps::KvStore>(); });
  } else {
    app_factory = [](splitbft::PersistHook persist) {
      return std::make_unique<apps::Ledger>(
          5, [persist](ByteView block) { persist(block); });
    };
  }
  SplitbftCluster cluster(options, app_factory);

  std::vector<std::shared_ptr<SplitPerfActor>> perf;
  for (ReplicaId r = 0; r < options.config.n; ++r) {
    auto actor = std::make_shared<SplitPerfActor>(
        cluster.harness(), cluster.replica_actor(r), profile,
        point.system == System::SplitbftSingle);
    {
      splitbft::SplitbftReplica* replica = &cluster.replica(r);
      actor->set_auth_stats(Compartment::Preparation, [replica] {
        return replica->prep().auth().stats();
      });
      actor->set_auth_stats(Compartment::Confirmation, [replica] {
        return replica->conf().auth().stats();
      });
      actor->set_auth_stats(Compartment::Execution, [replica] {
        return replica->exec().auth().stats();
      });
    }
    if (point.workload == Workload::Blockchain) {
      splitbft::SplitbftReplica* replica = &cluster.replica(r);
      actor->set_block_counter(
          [replica] { return replica->block_store().size(); });
    }
    for (const principal::Id id : cluster.replica_principals(r)) {
      cluster.harness().replace_actor(id, actor);
    }
    perf.push_back(std::move(actor));
  }

  const std::uint32_t total_clients = point.clients * point.outstanding;
  LatencyHistogram hist;
  splitbft::SplitClient::TrustAnchors anchors;
  anchors.attestation_root = cluster.attestation().root_public_key();

  std::vector<std::shared_ptr<SplitLoadClient>> clients;
  for (std::uint32_t i = 0; i < total_clients; ++i) {
    const ClientId id = kFirstClientId + i;
    auto client = std::make_shared<SplitLoadClient>(
        cluster.harness(), options.config, id, cluster.directory(), anchors,
        point.seed, bench_operation(point.workload, id), hist);
    // Sessions are provisioned out of band (the paper attests once before
    // the measurements).
    const crypto::Key32 session = bench_session_key(point.seed, id);
    client->client().adopt_session(session);
    for (ReplicaId r = 0; r < options.config.n; ++r) {
      cluster.replica(r).exec_mutable().install_session(id, session);
    }
    cluster.harness().add_actor(principal::client(id), client,
                                /*tick_interval_us=*/500'000);
    clients.push_back(std::move(client));
  }

  for (std::size_t i = 0; i < clients.size(); ++i) {
    auto client = clients[i];
    cluster.harness().scheduler().at(
        static_cast<Micros>(i * 13),
        [client, &cluster] { client->driver().start(cluster.harness().now()); });
  }

  cluster.harness().run_for(point.warmup_us);
  for (auto& client : clients) client->driver().set_measuring(true);
  // Snapshot the leader's ecall accounting at measurement start (Fig. 4).
  const EcallAccounting prep0 = perf[0]->ecall_stats(Compartment::Preparation);
  const EcallAccounting conf0 = perf[0]->ecall_stats(Compartment::Confirmation);
  const EcallAccounting exec0 = perf[0]->ecall_stats(Compartment::Execution);

  cluster.harness().run_for(point.measure_us);

  BenchResult result;
  for (auto& client : clients) {
    client->driver().set_measuring(false);
    result.completed_ops += client->driver().completed_ops();
  }
  result.ops_per_sec = static_cast<double>(result.completed_ops) /
                       (static_cast<double>(point.measure_us) / 1e6);
  result.latency = hist.summarize();
  result.mean_latency_ms = result.latency.mean_us / 1000.0;

  const EcallAccounting prep1 = perf[0]->ecall_stats(Compartment::Preparation);
  const EcallAccounting conf1 = perf[0]->ecall_stats(Compartment::Confirmation);
  const EcallAccounting exec1 = perf[0]->ecall_stats(Compartment::Execution);
  const double ops = std::max<double>(1.0, static_cast<double>(
      result.completed_ops));
  const auto per_req = [ops](const EcallAccounting& a,
                             const EcallAccounting& b) {
    return static_cast<double>(b.total_us - a.total_us) / ops;
  };
  const auto per_call = [](const EcallAccounting& a,
                           const EcallAccounting& b) {
    const std::uint64_t calls = b.calls - a.calls;
    return calls ? static_cast<double>(b.total_us - a.total_us) /
                       static_cast<double>(calls)
                 : 0.0;
  };
  result.leader_ecalls.prep_us_per_req = per_req(prep0, prep1);
  result.leader_ecalls.conf_us_per_req = per_req(conf0, conf1);
  result.leader_ecalls.exec_us_per_req = per_req(exec0, exec1);
  result.leader_ecalls.prep_mean_ecall_us = per_call(prep0, prep1);
  result.leader_ecalls.conf_mean_ecall_us = per_call(conf0, conf1);
  result.leader_ecalls.exec_mean_ecall_us = per_call(exec0, exec1);
  return result;
}

}  // namespace

BenchResult run_bench_point(const BenchPoint& point) {
  if (point.system == System::Pbft) return run_pbft(point);
  return run_splitbft(point);
}

std::string bench_row(const BenchPoint& point, const BenchResult& result) {
  char buf[192];
  std::snprintf(buf, sizeof(buf), "%-24s %-11s %8u %12.0f %11.2f %9.2f",
                to_string(point.system), to_string(point.workload),
                point.clients, result.ops_per_sec, result.mean_latency_ms,
                static_cast<double>(result.latency.p99_us) / 1000.0);
  return std::string(buf);
}

}  // namespace sbft::runtime
