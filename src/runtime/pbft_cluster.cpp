#include "runtime/pbft_cluster.hpp"

namespace sbft::runtime {

namespace {

/// Swallows every message (crashed replica).
class SinkActor final : public Actor {
 public:
  [[nodiscard]] std::vector<net::Envelope> handle(const net::Envelope&,
                                                  Micros) override {
    return {};
  }
  [[nodiscard]] std::vector<net::Envelope> tick(Micros) override { return {}; }
};

}  // namespace

PbftCluster::PbftCluster(PbftClusterOptions options,
                         apps::AppFactory app_factory)
    : options_(options),
      harness_(options.seed, options.link_params),
      keyring_(options.scheme, options.seed ^ 0x6b657972696e67ULL),
      directory_(options.client_master_secret) {
  for (ReplicaId r = 0; r < options_.config.n; ++r) {
    keyring_.add_principal(principal::pbft_replica(r));
  }
  const auto verifier = keyring_.verifier();
  for (ReplicaId r = 0; r < options_.config.n; ++r) {
    auto replica = std::make_unique<pbft::Replica>(
        options_.config, r, keyring_.signer(principal::pbft_replica(r)),
        verifier, directory_, app_factory, /*auth=*/nullptr,
        runner::make_runner(options_.exec_workers));
    auto actor = std::make_shared<PbftReplicaActor>(std::move(replica));
    replicas_.push_back(actor);
    harness_.add_actor(principal::pbft_replica(r), actor);
  }
}

void PbftCluster::add_client(ClientId id) {
  auto actor =
      std::make_shared<PbftClientActor>(options_.config, id, directory_);
  clients_[id] = actor;
  harness_.add_actor(principal::client(id), actor);
}

std::optional<Bytes> PbftCluster::execute(ClientId id, Bytes operation,
                                          Micros timeout_us) {
  return execute_impl(id, std::move(operation), /*read_only=*/false,
                      timeout_us);
}

std::optional<Bytes> PbftCluster::execute_read(ClientId id, Bytes operation,
                                               Micros timeout_us) {
  return execute_impl(id, std::move(operation), /*read_only=*/true,
                      timeout_us);
}

std::optional<Bytes> PbftCluster::execute_impl(ClientId id, Bytes operation,
                                               bool read_only,
                                               Micros timeout_us) {
  auto& actor = *clients_.at(id);
  const std::size_t before = actor.results().size();
  harness_.inject(
      actor.client().submit(std::move(operation), harness_.now(), read_only));
  const bool ok = harness_.run_until(
      [&] { return actor.results().size() > before; },
      harness_.now() + timeout_us);
  if (!ok) return std::nullopt;
  return actor.results().back();
}

void PbftCluster::crash_replica(ReplicaId r) {
  harness_.network().register_endpoint(
      principal::pbft_replica(r),
      [](net::Envelope) { /* crashed: drop everything */ });
}

void PbftCluster::restore_replica(ReplicaId r) {
  auto actor = replicas_.at(r);
  harness_.network().register_endpoint(
      principal::pbft_replica(r), [this, actor](net::Envelope env) {
        for (auto& out : actor->handle(env, harness_.now())) {
          harness_.network().send(std::move(out));
        }
      });
}

bool PbftCluster::check_agreement() const {
  for (std::size_t a = 0; a < replicas_.size(); ++a) {
    for (std::size_t b = a + 1; b < replicas_.size(); ++b) {
      const auto& ha = replicas_[a]->replica().execution_history();
      const auto& hb = replicas_[b]->replica().execution_history();
      for (const auto& [seq, digest] : ha) {
        const auto it = hb.find(seq);
        if (it != hb.end() && it->second != digest) return false;
      }
    }
  }
  return true;
}

}  // namespace sbft::runtime
