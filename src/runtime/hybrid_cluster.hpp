// Test/bench helper: a MinBFT-style hybrid cluster (2f+1 replicas with
// USIG enclaves) on the simulation harness.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "apps/app.hpp"
#include "crypto/keyring.hpp"
#include "hybrid/minbft.hpp"
#include "pbft/client.hpp"
#include "runtime/sim_harness.hpp"
#include "tee/monotonic_counter.hpp"

namespace sbft::runtime {

class HybridReplicaActor final : public Actor {
 public:
  explicit HybridReplicaActor(std::unique_ptr<hybrid::HybridReplica> replica)
      : replica_(std::move(replica)) {}

  [[nodiscard]] std::vector<net::Envelope> handle(const net::Envelope& env,
                                                  Micros now) override {
    return replica_->handle(env, now);
  }
  [[nodiscard]] std::vector<net::Envelope> tick(Micros now) override {
    return replica_->tick(now);
  }
  [[nodiscard]] hybrid::HybridReplica& replica() noexcept { return *replica_; }

 private:
  std::unique_ptr<hybrid::HybridReplica> replica_;
};

class HybridClientActor final : public Actor {
 public:
  HybridClientActor(pbft::Config config, ClientId id,
                    const pbft::ClientDirectory& directory)
      : client_(config, id, directory, 1'000'000,
                &principal::hybrid_replica) {}

  [[nodiscard]] std::vector<net::Envelope> handle(const net::Envelope& env,
                                                  Micros now) override {
    std::vector<net::Envelope> out;
    if (auto result = client_.on_reply(env, now, out)) {
      results_.push_back(std::move(*result));
    }
    return out;
  }
  [[nodiscard]] std::vector<net::Envelope> tick(Micros now) override {
    return client_.tick(now);
  }
  [[nodiscard]] pbft::Client& client() noexcept { return client_; }
  [[nodiscard]] const std::vector<Bytes>& results() const noexcept {
    return results_;
  }

 private:
  pbft::Client client_;
  std::vector<Bytes> results_;
};

struct HybridClusterOptions {
  std::uint32_t f{1};  // n = 2f+1
  std::uint64_t seed{1};
  crypto::Scheme scheme{crypto::Scheme::HmacShared};
  sim::LinkParams link_params{};
  std::uint64_t client_master_secret{0x5ec7e7};
};

class HybridCluster {
 public:
  HybridCluster(HybridClusterOptions options, apps::AppFactory app_factory);

  [[nodiscard]] hybrid::HybridReplica& replica(ReplicaId r) {
    return replicas_.at(r)->replica();
  }
  [[nodiscard]] HybridClientActor& client(ClientId c) { return *clients_.at(c); }
  void add_client(ClientId id);

  [[nodiscard]] std::optional<Bytes> execute(ClientId id, Bytes operation,
                                             Micros timeout_us = 10'000'000);

  void crash_replica(ReplicaId r);

  /// Agreement over primary-counter execution histories.
  [[nodiscard]] bool check_agreement() const;

  [[nodiscard]] SimHarness& harness() noexcept { return harness_; }
  [[nodiscard]] const pbft::Config& config() const noexcept { return config_; }
  [[nodiscard]] const crypto::KeyRing& keyring() const noexcept {
    return keyring_;
  }
  [[nodiscard]] const pbft::ClientDirectory& directory() const noexcept {
    return directory_;
  }
  /// Per-replica trusted counter services (fault injection targets).
  [[nodiscard]] tee::MonotonicCounterService& counters(ReplicaId r) {
    return *counter_services_.at(r);
  }

 private:
  HybridClusterOptions options_;
  pbft::Config config_;
  SimHarness harness_;
  crypto::KeyRing keyring_;
  pbft::ClientDirectory directory_;
  std::vector<std::unique_ptr<tee::MonotonicCounterService>> counter_services_;
  std::vector<std::shared_ptr<HybridReplicaActor>> replicas_;
  std::unordered_map<ClientId, std::shared_ptr<HybridClientActor>> clients_;
};

}  // namespace sbft::runtime
