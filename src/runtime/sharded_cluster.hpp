// Test/bench helper: N independent BFT groups (PBFT or SplitBFT) driven
// in lockstep simulated time, with shard::Router clients spanning them.
//
// Each shard is a complete cluster on its own SimHarness with its own
// seed-derived key material (`shard::shard_seed`) — shards never
// exchange messages, so their identical principal id spaces cannot
// collide. All cross-shard coordination is client-driven: a router
// client registers a port actor in every group's harness; replies
// surfacing in group `s` feed `Router::on_reply(s, ...)`, and any
// follow-up traffic the coordinator emits for other shards is injected
// into those harnesses. Groups advance in small lockstep quanta so the
// shards share one virtual timeline (cross-shard skew is bounded by the
// quantum, far below the simulated link latency).
#pragma once

#include <cassert>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "apps/kv_store.hpp"
#include "pbft/messages.hpp"
#include "runtime/pbft_cluster.hpp"
#include "runtime/splitbft_cluster.hpp"
#include "runtime/workload/workload.hpp"
#include "shard/router.hpp"

namespace sbft::runtime {

struct ShardedClusterOptions {
  std::uint32_t shards{2};
  pbft::Config config{};
  std::uint64_t seed{1};
  sim::LinkParams link_params{};
  shard::RouterOptions router{};
  std::size_t exec_workers{0};
  /// Lockstep step size: every group runs this much simulated time
  /// before any group runs further.
  Micros lockstep_quantum_us{200};
  /// Router port tick interval (engine retransmission timers).
  Micros client_tick_us{100'000};
};

/// Stack adapters for ShardedCluster. Both build KvStore groups — the
/// shard layer is the KV store's scale-out story.
struct PbftShardStack {
  using Cluster = PbftCluster;
  using Engine = pbft::Client;

  [[nodiscard]] static std::unique_ptr<Cluster> make_cluster(
      const ShardedClusterOptions& options, std::uint32_t shard) {
    PbftClusterOptions copts;
    copts.config = options.config;
    copts.seed = shard::shard_seed(options.seed, shard);
    copts.link_params = options.link_params;
    copts.exec_workers = options.exec_workers;
    return std::make_unique<Cluster>(
        copts, [] { return std::make_unique<apps::KvStore>(); });
  }

  [[nodiscard]] static std::unique_ptr<Engine> make_engine(
      Cluster& group, const ShardedClusterOptions& options,
      std::uint32_t shard, ClientId id, Micros retry_us) {
    (void)options;
    (void)shard;
    return std::make_unique<Engine>(group.config(), id, group.directory(),
                                    retry_us);
  }
};

struct SplitbftShardStack {
  using Cluster = SplitbftCluster;
  using Engine = splitbft::SplitClient;

  [[nodiscard]] static std::unique_ptr<Cluster> make_cluster(
      const ShardedClusterOptions& options, std::uint32_t shard) {
    SplitClusterOptions copts;
    copts.config = options.config;
    copts.seed = shard::shard_seed(options.seed, shard);
    copts.link_params = options.link_params;
    copts.exec_workers = options.exec_workers;
    return std::make_unique<Cluster>(
        copts,
        splitbft::plain_app([] { return std::make_unique<apps::KvStore>(); }));
  }

  [[nodiscard]] static std::unique_ptr<Engine> make_engine(
      Cluster& group, const ShardedClusterOptions& options,
      std::uint32_t shard, ClientId id, Micros retry_us) {
    const std::uint64_t group_seed = shard::shard_seed(options.seed, shard);
    splitbft::SplitClient::TrustAnchors anchors;
    anchors.attestation_root = group.attestation().root_public_key();
    auto engine = std::make_unique<Engine>(group.config(), id,
                                           group.directory(), anchors,
                                           group_seed, retry_us);
    // Sessions are provisioned out of band from the shard's seed (the
    // same convention the workload drivers use): attestation is a
    // startup cost, not part of the sharding story under test.
    const crypto::Key32 session = workload::session_key(group_seed, id);
    engine->adopt_session(session);
    for (ReplicaId r = 0; r < group.config().n; ++r) {
      group.replica(r).exec_mutable().install_session(id, session);
    }
    return engine;
  }
};

template <typename Stack>
class ShardedCluster {
 public:
  using Cluster = typename Stack::Cluster;
  using Engine = typename Stack::Engine;
  using Router = shard::Router<Engine>;
  /// Completion callback: final result bytes + the local virtual time.
  using ResultFn = std::function<void(Bytes, Micros)>;

  explicit ShardedCluster(ShardedClusterOptions options)
      : options_(std::move(options)) {
    options_.router.shards = options_.shards;
    groups_.reserve(options_.shards);
    for (std::uint32_t s = 0; s < options_.shards; ++s) {
      groups_.push_back(Stack::make_cluster(options_, s));
    }
  }

  [[nodiscard]] std::uint32_t shards() const noexcept {
    return options_.shards;
  }
  [[nodiscard]] Cluster& group(std::uint32_t s) { return *groups_.at(s); }
  [[nodiscard]] SimHarness& harness(std::uint32_t s) {
    return groups_.at(s)->harness();
  }
  [[nodiscard]] sim::Scheduler& scheduler() {
    return groups_[0]->harness().scheduler();
  }
  [[nodiscard]] Micros now() const { return groups_[0]->harness().now(); }
  [[nodiscard]] const ShardedClusterOptions& options() const noexcept {
    return options_;
  }

  /// Registers a router client across every shard. `on_result` (if set)
  /// observes every completion; results are also queued for execute().
  Router& add_client(ClientId id, Micros retry_us = 1'000'000,
                     ResultFn on_result = nullptr) {
    auto state = std::make_shared<ClientState>();
    state->owner = this;
    state->on_result = std::move(on_result);
    std::vector<std::unique_ptr<Engine>> engines;
    engines.reserve(options_.shards);
    for (std::uint32_t s = 0; s < options_.shards; ++s) {
      engines.push_back(
          Stack::make_engine(*groups_[s], options_, s, id, retry_us));
    }
    state->router =
        std::make_unique<Router>(std::move(engines), options_.router);
    for (std::uint32_t s = 0; s < options_.shards; ++s) {
      auto port = std::make_shared<Port>(state, s);
      if (s == 0) {
        groups_[s]->harness().add_actor(principal::client(id), port,
                                        options_.client_tick_us);
      } else {
        groups_[s]->harness().add_endpoint(principal::client(id), port);
      }
    }
    clients_.emplace(id, state);
    return *state->router;
  }

  [[nodiscard]] Router& router(ClientId id) {
    return *clients_.at(id)->router;
  }
  [[nodiscard]] const std::vector<Bytes>& results(ClientId id) const {
    return clients_.at(id)->results;
  }

  /// Submits an operation on a registered client at the current virtual
  /// time (the router must be idle).
  void submit(ClientId id, Bytes operation, bool read_only = false) {
    auto& state = *clients_.at(id);
    assert(!state.router->in_flight());
    dispatch(state.router->submit(std::move(operation), now(), read_only));
  }

  /// Coordinator crash: the client's ports go silent — in-flight 2PC
  /// traffic already injected keeps flowing, but no reply is processed
  /// and no further phase is driven.
  void crash_client(ClientId id) { clients_.at(id)->crashed = true; }

  /// Runs all groups forward in lockstep.
  void run_for(Micros duration) {
    Micros done = 0;
    while (done < duration) {
      const Micros step =
          std::min<Micros>(options_.lockstep_quantum_us, duration - done);
      for (auto& g : groups_) g->harness().run_for(step);
      done += step;
    }
  }

  /// Lockstep run_until: checks the predicate at quantum granularity.
  bool run_until(const std::function<bool()>& done, Micros max_sim_time) {
    Micros elapsed = 0;
    while (elapsed < max_sim_time) {
      if (done()) return true;
      for (auto& g : groups_) {
        g->harness().run_for(options_.lockstep_quantum_us);
      }
      elapsed += options_.lockstep_quantum_us;
    }
    return done();
  }

  /// Runs one operation to completion across all shards.
  [[nodiscard]] std::optional<Bytes> execute(ClientId id, Bytes operation,
                                             Micros timeout_us = 10'000'000,
                                             bool read_only = false) {
    auto state = clients_.at(id);
    const std::size_t base = state->results.size();
    submit(id, std::move(operation), read_only);
    if (!run_until([&] { return state->results.size() > base; },
                   timeout_us)) {
      return std::nullopt;
    }
    return state->results.back();
  }

  [[nodiscard]] std::optional<Bytes> execute_read(
      ClientId id, Bytes operation, Micros timeout_us = 10'000'000) {
    return execute(id, std::move(operation), timeout_us, /*read_only=*/true);
  }

  /// Typed KV helpers for tests.
  [[nodiscard]] std::optional<apps::KvStatus> put(ClientId id, ByteView key,
                                                  ByteView value) {
    const auto reply = execute(id, apps::kv::encode_put(key, value));
    if (!reply) return std::nullopt;
    const auto decoded = apps::kv::decode_reply(*reply);
    if (!decoded) return std::nullopt;
    return decoded->status;
  }
  [[nodiscard]] std::optional<apps::kv::Reply> get(ClientId id, ByteView key) {
    const auto reply = execute(id, apps::kv::encode_get(key));
    if (!reply) return std::nullopt;
    return apps::kv::decode_reply(*reply);
  }

  void crash_replica(std::uint32_t shard, ReplicaId r) {
    groups_.at(shard)->crash_replica(r);
  }
  void restore_replica(std::uint32_t shard, ReplicaId r) {
    groups_.at(shard)->restore_replica(r);
  }

  /// Agreement must hold inside every group.
  [[nodiscard]] bool check_agreement() const {
    for (const auto& g : groups_) {
      if (!g->check_agreement()) return false;
    }
    return true;
  }

 private:
  struct ClientState {
    ShardedCluster* owner{nullptr};
    std::unique_ptr<Router> router;
    std::vector<Bytes> results;
    ResultFn on_result;
    bool crashed{false};
  };

  /// Delivery + tick adapter for one (client, shard) pair. Only shard
  /// 0's port owns a tick loop — Router::tick covers every engine.
  class Port final : public Actor {
   public:
    Port(std::shared_ptr<ClientState> state, std::uint32_t shard)
        : state_(std::move(state)), shard_(shard) {}

    [[nodiscard]] std::vector<net::Envelope> handle(const net::Envelope& env,
                                                    Micros now) override {
      auto& state = *state_;
      if (state.crashed) return {};
      if (env.type != pbft::tag(pbft::MsgType::Reply) &&
          env.type != pbft::tag(pbft::MsgType::ReadReply)) {
        return {};  // sessions are provisioned out of band
      }
      std::vector<shard::Routed> out;
      auto result = state.router->on_reply(shard_, env, now, out);
      if (result) {
        state.results.push_back(*result);
        if (state.on_result) state.on_result(*std::move(result), now);
      }
      return state.owner->partition(shard_, std::move(out));
    }

    [[nodiscard]] std::vector<net::Envelope> tick(Micros now) override {
      auto& state = *state_;
      if (state.crashed) return {};
      return state.owner->partition(shard_, state.router->tick(now));
    }

   private:
    std::shared_ptr<ClientState> state_;
    std::uint32_t shard_;
  };

  /// Splits routed traffic: envelopes for `local_shard` return to its
  /// harness's dispatch loop; the rest are injected into their groups.
  [[nodiscard]] std::vector<net::Envelope> partition(
      std::uint32_t local_shard, std::vector<shard::Routed>&& routed) {
    std::vector<net::Envelope> local;
    std::map<std::uint32_t, std::vector<net::Envelope>> remote;
    for (auto& r : routed) {
      if (r.shard == local_shard) {
        local.push_back(std::move(r.env));
      } else {
        remote[r.shard].push_back(std::move(r.env));
      }
    }
    for (auto& [s, envs] : remote) groups_[s]->harness().inject(envs);
    return local;
  }

  void dispatch(std::vector<shard::Routed>&& routed) {
    std::map<std::uint32_t, std::vector<net::Envelope>> by_shard;
    for (auto& r : routed) by_shard[r.shard].push_back(std::move(r.env));
    for (auto& [s, envs] : by_shard) groups_[s]->harness().inject(envs);
  }

  ShardedClusterOptions options_;
  std::vector<std::unique_ptr<Cluster>> groups_;
  std::map<ClientId, std::shared_ptr<ClientState>> clients_;
};

using ShardedPbftCluster = ShardedCluster<PbftShardStack>;
using ShardedSplitbftCluster = ShardedCluster<SplitbftShardStack>;

}  // namespace sbft::runtime
