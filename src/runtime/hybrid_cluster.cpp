#include "runtime/hybrid_cluster.hpp"

namespace sbft::runtime {

HybridCluster::HybridCluster(HybridClusterOptions options,
                             apps::AppFactory app_factory)
    : options_(options),
      config_(hybrid::hybrid_config(options.f)),
      harness_(options.seed, options.link_params),
      keyring_(options.scheme, options.seed ^ 0x6879627269ULL),
      directory_(options.client_master_secret) {
  for (ReplicaId r = 0; r < config_.n; ++r) {
    keyring_.add_principal(principal::hybrid_replica(r));
  }
  const auto verifier = keyring_.verifier();
  for (ReplicaId r = 0; r < config_.n; ++r) {
    counter_services_.push_back(
        std::make_unique<tee::MonotonicCounterService>());
    auto usig = std::make_shared<hybrid::Usig>(
        keyring_.signer(principal::hybrid_replica(r)), *counter_services_[r],
        /*counter_id=*/r);
    auto replica = std::make_unique<hybrid::HybridReplica>(
        config_, r, std::move(usig), verifier, directory_, app_factory);
    auto actor = std::make_shared<HybridReplicaActor>(std::move(replica));
    replicas_.push_back(actor);
    harness_.add_actor(principal::hybrid_replica(r), actor);
  }
}

void HybridCluster::add_client(ClientId id) {
  auto actor = std::make_shared<HybridClientActor>(config_, id, directory_);
  clients_[id] = actor;
  harness_.add_actor(principal::client(id), actor);
}

std::optional<Bytes> HybridCluster::execute(ClientId id, Bytes operation,
                                            Micros timeout_us) {
  auto& actor = *clients_.at(id);
  const std::size_t before = actor.results().size();
  harness_.inject(actor.client().submit(std::move(operation), harness_.now()));
  const bool ok = harness_.run_until(
      [&] { return actor.results().size() > before; },
      harness_.now() + timeout_us);
  if (!ok) return std::nullopt;
  return actor.results().back();
}

void HybridCluster::crash_replica(ReplicaId r) {
  harness_.network().register_endpoint(principal::hybrid_replica(r),
                                       [](net::Envelope) {});
}

bool HybridCluster::check_agreement() const {
  for (std::size_t a = 0; a < replicas_.size(); ++a) {
    for (std::size_t b = a + 1; b < replicas_.size(); ++b) {
      const auto& ha = replicas_[a]->replica().execution_history();
      const auto& hb = replicas_[b]->replica().execution_history();
      for (const auto& [counter, digest] : ha) {
        const auto it = hb.find(counter);
        if (it != hb.end() && it->second != digest) return false;
      }
    }
  }
  return true;
}

}  // namespace sbft::runtime
