// Deterministic simulation harness: actors + simulated network + timers.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "common/rng.hpp"
#include "runtime/actor.hpp"
#include "sim/scheduler.hpp"
#include "sim/sim_network.hpp"

namespace sbft::runtime {

class SimHarness {
 public:
  explicit SimHarness(std::uint64_t seed, sim::LinkParams link_params = {});

  /// Registers an actor under a principal id; the harness delivers incoming
  /// envelopes and fires tick() every `tick_interval_us` of simulated time.
  void add_actor(principal::Id id, std::shared_ptr<Actor> actor,
                 Micros tick_interval_us = 1'000);

  /// Registers an additional delivery endpoint for an existing actor
  /// (e.g. a SplitBFT broker answering for its three enclave principals).
  /// No separate tick loop is created.
  void add_endpoint(principal::Id id, std::shared_ptr<Actor> actor);

  /// Replaces the actor behind `id` (and re-points its tick loop). Used by
  /// fault-injection tests to interpose byzantine wrappers.
  void replace_actor(principal::Id id, std::shared_ptr<Actor> actor);

  /// Sends envelopes on behalf of an actor (e.g. a client kicking off an
  /// operation from outside the event loop).
  void inject(const std::vector<net::Envelope>& envs);

  /// Runs simulated time forward by `duration`.
  void run_for(Micros duration);

  /// Steps until `done()` returns true or `max_sim_time` is reached.
  /// Returns true iff the predicate fired.
  bool run_until(const std::function<bool()>& done, Micros max_sim_time);

  [[nodiscard]] sim::Scheduler& scheduler() noexcept { return scheduler_; }
  [[nodiscard]] sim::SimNetwork& network() noexcept { return network_; }
  [[nodiscard]] Micros now() const noexcept { return scheduler_.now(); }

 private:
  void dispatch(const std::vector<net::Envelope>& envs);
  /// Move overload: actor outboxes are rvalues — envelopes (frame-backed,
  /// cheap to move) go straight into the network without a copy.
  void dispatch(std::vector<net::Envelope>&& envs);
  void schedule_tick(principal::Id id, Micros interval);

  sim::Scheduler scheduler_;
  sim::SimNetwork network_;
  std::unordered_map<principal::Id, std::shared_ptr<Actor>> actors_;
};

}  // namespace sbft::runtime
