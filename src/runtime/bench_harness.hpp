// Benchmark harness: assembles perf-modeled clusters with closed-loop
// clients and measures a single load point in virtual time.
//
// One harness drives every evaluation experiment:
//   Figures 3a/3b — throughput & latency vs client count, (un)batched,
//                   KVS and blockchain, PBFT vs SplitBFT variants;
//   Figure 4      — per-compartment ecall time on the leader;
//   ablations     — transition-cost and batch-size sweeps.
#pragma once

#include <string>

#include "runtime/perf_model.hpp"

namespace sbft::runtime {

enum class System {
  Pbft,             // baseline, 4-worker pool
  Splitbft,         // SGX cost model, thread per enclave
  SplitbftSim,      // SGX simulation mode (no crossing costs)
  SplitbftSingle,   // one thread performs all ecalls
};

enum class Workload {
  KvStore,     // PUT of a 10-byte value (paper's KVS experiment)
  Blockchain,  // opaque 10-byte transactions, 5-tx blocks persisted
};

[[nodiscard]] const char* to_string(System s) noexcept;
[[nodiscard]] const char* to_string(Workload w) noexcept;

struct BenchPoint {
  System system{System::Splitbft};
  Workload workload{Workload::KvStore};
  std::uint32_t clients{40};
  /// Outstanding requests per client (paper: 40 in the batched runs);
  /// modeled as `clients * outstanding` independent closed-loop clients.
  std::uint32_t outstanding{1};
  bool batched{false};  // batch_max=200 + 10ms timer vs unbatched
  CostProfile profile{};
  Micros warmup_us{300'000};
  Micros measure_us{1'000'000};
  std::uint64_t seed{7};
};

/// Per-request time spent inside each compartment on the leader (Figure 4).
struct EcallBreakdown {
  double prep_us_per_req{0};
  double conf_us_per_req{0};
  double exec_us_per_req{0};
  double prep_mean_ecall_us{0};
  double conf_mean_ecall_us{0};
  double exec_mean_ecall_us{0};
};

struct BenchResult {
  double ops_per_sec{0};
  double mean_latency_ms{0};
  /// Summarized from a fixed-memory LatencyHistogram (same fields the old
  /// unbounded LatencyRecorder reported; quantiles are bucket-resolution).
  LatencySummary latency;
  std::uint64_t completed_ops{0};
  EcallBreakdown leader_ecalls;  // SplitBFT systems only
};

/// Runs one load point to completion in virtual time.
[[nodiscard]] BenchResult run_bench_point(const BenchPoint& point);

/// Formats a result row for the benchmark tables.
[[nodiscard]] std::string bench_row(const BenchPoint& point,
                                    const BenchResult& result);

}  // namespace sbft::runtime
