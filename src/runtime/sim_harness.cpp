#include "runtime/sim_harness.hpp"

namespace sbft::runtime {

SimHarness::SimHarness(std::uint64_t seed, sim::LinkParams link_params)
    : network_(scheduler_, Rng(seed), link_params) {}

void SimHarness::dispatch(const std::vector<net::Envelope>& envs) {
  for (const auto& env : envs) network_.send(env);
}

void SimHarness::dispatch(std::vector<net::Envelope>&& envs) {
  for (auto& env : envs) network_.send(std::move(env));
}

void SimHarness::add_actor(principal::Id id, std::shared_ptr<Actor> actor,
                           Micros tick_interval_us) {
  actors_[id] = actor;
  network_.register_endpoint(id, [this, actor](net::Envelope env) {
    dispatch(actor->handle(env, scheduler_.now()));
  });
  if (tick_interval_us > 0) schedule_tick(id, tick_interval_us);
}

void SimHarness::add_endpoint(principal::Id id, std::shared_ptr<Actor> actor) {
  network_.register_endpoint(id, [this, actor](net::Envelope env) {
    dispatch(actor->handle(env, scheduler_.now()));
  });
}

void SimHarness::replace_actor(principal::Id id, std::shared_ptr<Actor> actor) {
  actors_[id] = actor;  // tick loops look the actor up by id on each firing
  add_endpoint(id, std::move(actor));
}

void SimHarness::schedule_tick(principal::Id id, Micros interval) {
  scheduler_.after(interval, [this, id, interval] {
    const auto it = actors_.find(id);
    if (it == actors_.end()) return;
    dispatch(it->second->tick(scheduler_.now()));
    schedule_tick(id, interval);
  });
}

void SimHarness::inject(const std::vector<net::Envelope>& envs) {
  dispatch(envs);
}

void SimHarness::run_for(Micros duration) {
  scheduler_.run_until(scheduler_.now() + duration);
}

bool SimHarness::run_until(const std::function<bool()>& done,
                           Micros max_sim_time) {
  while (!done()) {
    if (scheduler_.now() > max_sim_time || scheduler_.empty()) return done();
    (void)scheduler_.step();
  }
  return true;
}

}  // namespace sbft::runtime
