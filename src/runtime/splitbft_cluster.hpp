// Test/bench helper: a full SplitBFT cluster (n replicas × 3 enclaves +
// brokers + clients) on the simulation harness.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "crypto/keyring.hpp"
#include "runtime/sim_harness.hpp"
#include "splitbft/client.hpp"
#include "splitbft/replica.hpp"
#include "tee/attestation.hpp"
#include "tee/sealing.hpp"

namespace sbft::runtime {

/// Adapts a splitbft::SplitClient; completed results are queued for tests.
class SplitClientActor final : public Actor {
 public:
  SplitClientActor(pbft::Config config, ClientId id,
                   const pbft::ClientDirectory& directory,
                   splitbft::SplitClient::TrustAnchors anchors,
                   std::uint64_t seed)
      : client_(config, id, directory, anchors, seed) {}

  [[nodiscard]] std::vector<net::Envelope> handle(const net::Envelope& env,
                                                  Micros now) override {
    if (env.type == pbft::tag(pbft::MsgType::Reply) ||
        env.type == pbft::tag(pbft::MsgType::ReadReply)) {
      std::vector<net::Envelope> out;
      if (auto result = client_.on_reply(env, now, out)) {
        results_.push_back(std::move(*result));
      }
      return out;
    }
    return client_.on_message(env, now);
  }
  [[nodiscard]] std::vector<net::Envelope> tick(Micros now) override {
    return client_.tick(now);
  }

  [[nodiscard]] splitbft::SplitClient& client() noexcept { return client_; }
  [[nodiscard]] const std::vector<Bytes>& results() const noexcept {
    return results_;
  }

 private:
  splitbft::SplitClient client_;
  std::vector<Bytes> results_;
};

struct SplitClusterOptions {
  pbft::Config config{};
  std::uint64_t seed{1};
  crypto::Scheme scheme{crypto::Scheme::HmacShared};
  sim::LinkParams link_params{};
  tee::CostModel cost_model{tee::CostModel::sgx()};
  std::uint64_t client_master_secret{0x5ec7e7};
  /// Execution-compartment staged-runner workers (see
  /// PbftClusterOptions::exec_workers; 0 = serial reference path).
  std::size_t exec_workers{0};
  /// Per-replica byzantine-compartment injection. The decorator receives
  /// the enclave signer so attacks can craft validly signed messages.
  using DecoratorFactory = std::function<splitbft::LogicDecorator(
      ReplicaId r, const crypto::KeyRing& keyring)>;
  std::map<ReplicaId, DecoratorFactory> compartment_faults{};
};

class SplitbftCluster {
 public:
  SplitbftCluster(SplitClusterOptions options,
                  splitbft::ExecAppFactory app_factory);

  [[nodiscard]] splitbft::SplitbftReplica& replica(ReplicaId r) {
    return *replicas_.at(r);
  }
  [[nodiscard]] std::shared_ptr<splitbft::SplitbftReplica> replica_actor(
      ReplicaId r) {
    return replicas_.at(r);
  }
  [[nodiscard]] SplitClientActor& client(ClientId c) { return *clients_.at(c); }

  void add_client(ClientId id);

  /// Runs attestation + session setup for every registered client.
  /// Returns true when all sessions are established.
  [[nodiscard]] bool setup_sessions(Micros timeout_us = 30'000'000);

  /// Runs one operation to completion in simulated time.
  [[nodiscard]] std::optional<Bytes> execute(ClientId id, Bytes operation,
                                             Micros timeout_us = 20'000'000);

  /// Like execute(), but submits as a read-only request — the fast path
  /// when Config::read_path is on, falling back to ordering as the
  /// protocol dictates.
  [[nodiscard]] std::optional<Bytes> execute_read(
      ClientId id, Bytes operation, Micros timeout_us = 20'000'000);

  /// Crash the whole replica (environment + enclaves stop responding).
  void crash_replica(ReplicaId r);
  void restore_replica(ReplicaId r);

  /// Interposes a byzantine environment: `wrap` receives the honest replica
  /// actor and returns the adversarial wrapper that takes over all of this
  /// replica's principals (broker compromise — safety must survive).
  void interpose_env(
      ReplicaId r,
      const std::function<std::shared_ptr<Actor>(std::shared_ptr<Actor>)>&
          wrap);

  [[nodiscard]] const crypto::KeyRing& keyring() const noexcept {
    return keyring_;
  }

  /// Agreement: no two Execution enclaves executed different batch digests
  /// at the same sequence number.
  [[nodiscard]] bool check_agreement() const;

  [[nodiscard]] SimHarness& harness() noexcept { return harness_; }
  [[nodiscard]] const pbft::Config& config() const noexcept {
    return options_.config;
  }
  [[nodiscard]] const pbft::ClientDirectory& directory() const noexcept {
    return directory_;
  }
  [[nodiscard]] const tee::AttestationService& attestation() const noexcept {
    return attestation_;
  }
  [[nodiscard]] std::vector<principal::Id> replica_principals(
      ReplicaId r) const;

 private:
  [[nodiscard]] std::optional<Bytes> execute_impl(ClientId id, Bytes operation,
                                                  bool read_only,
                                                  Micros timeout_us);

  SplitClusterOptions options_;
  SimHarness harness_;
  crypto::KeyRing keyring_;
  pbft::ClientDirectory directory_;
  tee::AttestationService attestation_;
  tee::SealingService sealing_;
  std::vector<std::shared_ptr<splitbft::SplitbftReplica>> replicas_;
  std::unordered_map<ClientId, std::shared_ptr<SplitClientActor>> clients_;
};

}  // namespace sbft::runtime
