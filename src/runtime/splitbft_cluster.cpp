#include "runtime/splitbft_cluster.hpp"

#include "crypto/x25519.hpp"

namespace sbft::runtime {

SplitbftCluster::SplitbftCluster(SplitClusterOptions options,
                                 splitbft::ExecAppFactory app_factory)
    : options_(options),
      harness_(options.seed, options.link_params),
      keyring_(options.scheme, options.seed ^ 0x5b5f7b657972ULL),
      directory_(options.client_master_secret),
      attestation_(options.seed ^ 0xa77e57ULL),
      sealing_(options.seed ^ 0x5ea1ULL) {
  Rng rng(options.seed ^ 0x5b5f636c7573ULL);
  crypto::Key32 exec_group_key;
  for (auto& b : exec_group_key) b = static_cast<std::uint8_t>(rng.next_u64());

  for (ReplicaId r = 0; r < options_.config.n; ++r) {
    for (const Compartment c :
         {Compartment::Preparation, Compartment::Confirmation,
          Compartment::Execution}) {
      keyring_.add_principal(principal::enclave({r, c}));
    }
  }
  splitbft::ReplicaOptions replica_options;
  replica_options.config = options_.config;
  replica_options.cost_model = options_.cost_model;
  replica_options.charge_real_time = false;
  replica_options.client_master_secret = options_.client_master_secret;
  replica_options.exec_workers = options_.exec_workers;

  for (ReplicaId r = 0; r < options_.config.n; ++r) {
    const crypto::Key32 dh_secret = crypto::x25519_keygen(rng);
    const auto fault = options_.compartment_faults.find(r);
    replica_options.decorate_logic =
        fault != options_.compartment_faults.end()
            ? fault->second(r, keyring_)
            : splitbft::LogicDecorator{};
    auto replica = std::make_shared<splitbft::SplitbftReplica>(
        replica_options, r, keyring_, attestation_, sealing_, exec_group_key,
        dh_secret, app_factory);
    replicas_.push_back(replica);
    harness_.add_actor(principal::splitbft_env(r), replica);
    for (const principal::Id id : replica_principals(r)) {
      if (id != principal::splitbft_env(r)) harness_.add_endpoint(id, replica);
    }
  }
}

std::vector<principal::Id> SplitbftCluster::replica_principals(
    ReplicaId r) const {
  return {
      principal::splitbft_env(r),
      principal::enclave({r, Compartment::Preparation}),
      principal::enclave({r, Compartment::Confirmation}),
      principal::enclave({r, Compartment::Execution}),
  };
}

void SplitbftCluster::add_client(ClientId id) {
  splitbft::SplitClient::TrustAnchors anchors;
  anchors.attestation_root = attestation_.root_public_key();
  auto actor = std::make_shared<SplitClientActor>(
      options_.config, id, directory_, anchors, options_.seed);
  clients_[id] = actor;
  harness_.add_actor(principal::client(id), actor);
}

bool SplitbftCluster::setup_sessions(Micros timeout_us) {
  for (auto& [id, actor] : clients_) {
    harness_.inject(actor->client().begin_session(harness_.now()));
  }
  return harness_.run_until(
      [&] {
        for (const auto& [id, actor] : clients_) {
          if (!actor->client().session_ready()) return false;
        }
        return true;
      },
      harness_.now() + timeout_us);
}

std::optional<Bytes> SplitbftCluster::execute(ClientId id, Bytes operation,
                                              Micros timeout_us) {
  return execute_impl(id, std::move(operation), /*read_only=*/false,
                      timeout_us);
}

std::optional<Bytes> SplitbftCluster::execute_read(ClientId id,
                                                   Bytes operation,
                                                   Micros timeout_us) {
  return execute_impl(id, std::move(operation), /*read_only=*/true,
                      timeout_us);
}

std::optional<Bytes> SplitbftCluster::execute_impl(ClientId id,
                                                   Bytes operation,
                                                   bool read_only,
                                                   Micros timeout_us) {
  auto& actor = *clients_.at(id);
  const std::size_t before = actor.results().size();
  harness_.inject(
      actor.client().submit(std::move(operation), harness_.now(), read_only));
  const bool ok = harness_.run_until(
      [&] { return actor.results().size() > before; },
      harness_.now() + timeout_us);
  if (!ok) return std::nullopt;
  return actor.results().back();
}

void SplitbftCluster::crash_replica(ReplicaId r) {
  for (const principal::Id id : replica_principals(r)) {
    harness_.network().register_endpoint(id, [](net::Envelope) {});
  }
}

void SplitbftCluster::restore_replica(ReplicaId r) {
  auto replica = replicas_.at(r);
  for (const principal::Id id : replica_principals(r)) {
    harness_.add_endpoint(id, replica);
  }
}

void SplitbftCluster::interpose_env(
    ReplicaId r,
    const std::function<std::shared_ptr<Actor>(std::shared_ptr<Actor>)>&
        wrap) {
  auto wrapper = wrap(replicas_.at(r));
  for (const principal::Id id : replica_principals(r)) {
    harness_.replace_actor(id, wrapper);
  }
}

bool SplitbftCluster::check_agreement() const {
  for (std::size_t a = 0; a < replicas_.size(); ++a) {
    for (std::size_t b = a + 1; b < replicas_.size(); ++b) {
      const auto& ha = replicas_[a]->exec().execution_history();
      const auto& hb = replicas_[b]->exec().execution_history();
      for (const auto& [seq, digest] : ha) {
        const auto it = hb.find(seq);
        if (it != hb.end() && it->second != digest) return false;
      }
    }
  }
  return true;
}

}  // namespace sbft::runtime
