// Internal GF(2^255-19) field arithmetic shared by X25519 and Ed25519.
//
// Representation: 16 limbs of 16 bits each in int64 slots (TweetNaCl-style).
// Not part of the public API; exposed in a header only so the property test
// suite can exercise field laws directly.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace sbft::crypto::fe {

using Gf = std::array<std::int64_t, 16>;

inline constexpr Gf kZero{};
inline constexpr Gf kOne{1};

void carry(Gf& o) noexcept;
/// Constant-time conditional swap of a and b when bit != 0.
void cswap(Gf& a, Gf& b, int bit) noexcept;
/// o = a + b (no reduction needed thanks to limb headroom).
void add(Gf& o, const Gf& a, const Gf& b) noexcept;
/// o = a - b.
void sub(Gf& o, const Gf& a, const Gf& b) noexcept;
/// o = a * b mod p.
void mul(Gf& o, const Gf& a, const Gf& b) noexcept;
/// o = a^2 mod p.
void sq(Gf& o, const Gf& a) noexcept;
/// o = a^-1 mod p (a != 0).
void invert(Gf& o, const Gf& a) noexcept;
/// o = a^((p-5)/8) mod p, used for square roots.
void pow2523(Gf& o, const Gf& a) noexcept;
/// o = base^exp where exp is 32 little-endian bytes (not constant time;
/// used only to derive public curve constants).
void pow_bytes(Gf& o, const Gf& base,
               const std::array<std::uint8_t, 32>& exp) noexcept;

/// Canonical (fully reduced) 32-byte little-endian encoding.
void pack(std::uint8_t out[32], const Gf& n) noexcept;
/// Parses 32 little-endian bytes; the top bit is ignored.
void unpack(Gf& o, const std::uint8_t in[32]) noexcept;
/// Loads a small constant.
void from_u64(Gf& o, std::uint64_t v) noexcept;

/// Parity of the canonical encoding (bit 0).
[[nodiscard]] int parity(const Gf& a) noexcept;
/// True iff a == b as field elements.
[[nodiscard]] bool eq(const Gf& a, const Gf& b) noexcept;

// --- Edwards curve (ed25519) group operations -------------------------------

/// Point in extended coordinates (X:Y:Z:T), x=X/Z, y=Y/Z, T=XY/Z.
using Point = std::array<Gf, 4>;

/// Curve constants, derived on first use from first principles:
/// d = -121665/121666, base point y = 4/5 with even x, sqrt(-1).
struct Constants {
  Gf d;
  Gf d2;
  Gf sqrt_m1;
  Gf base_x;
  Gf base_y;
};
[[nodiscard]] const Constants& constants() noexcept;

/// p += q (unified twisted-Edwards addition, complete for a = -1).
void point_add(Point& p, const Point& q) noexcept;
/// p = s * q, s is a 32-byte little-endian scalar. Constant-time ladder.
void scalar_mult(Point& p, Point& q, const std::uint8_t s[32]) noexcept;
/// p = s * B for the curve base point B.
void scalar_base(Point& p, const std::uint8_t s[32]) noexcept;
/// Serializes a point (y with sign-of-x in bit 255).
void point_pack(std::uint8_t out[32], const Point& p) noexcept;
/// Deserializes the NEGATION of the encoded point; false if not on curve.
[[nodiscard]] bool point_unpack_neg(Point& p, const std::uint8_t in[32]) noexcept;

}  // namespace sbft::crypto::fe
