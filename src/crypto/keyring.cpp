#include "crypto/keyring.hpp"

#include <mutex>
#include <stdexcept>

namespace sbft::crypto {

namespace {

[[nodiscard]] Bytes id_prefixed(PrincipalId id, ByteView message) {
  Bytes data;
  data.reserve(8 + message.size());
  for (int i = 0; i < 8; ++i) {
    data.push_back(static_cast<std::uint8_t>(id >> (8 * i)));
  }
  append(data, message);
  return data;
}

class Ed25519SignerImpl final : public Signer {
 public:
  Ed25519SignerImpl(PrincipalId id, Ed25519SecretKey key)
      : id_(id), key_(std::move(key)) {}

  [[nodiscard]] Bytes sign(ByteView message) const override {
    const Ed25519Signature sig = key_.sign(message);
    return Bytes(sig.bytes.begin(), sig.bytes.end());
  }
  [[nodiscard]] PrincipalId id() const noexcept override { return id_; }

 private:
  PrincipalId id_;
  Ed25519SecretKey key_;
};

class Ed25519VerifierImpl final : public Verifier {
 public:
  explicit Ed25519VerifierImpl(
      std::unordered_map<PrincipalId, Ed25519PublicKey> keys)
      : keys_(std::move(keys)) {}

  [[nodiscard]] bool verify(PrincipalId signer, ByteView message,
                            ByteView sig) const override {
    const auto it = keys_.find(signer);
    if (it == keys_.end() || sig.size() != 64) return false;
    Ed25519Signature s;
    std::copy(sig.begin(), sig.end(), s.bytes.begin());
    return ed25519_verify(it->second, message, s);
  }
  [[nodiscard]] bool knows(PrincipalId signer) const override {
    return keys_.contains(signer);
  }

 private:
  std::unordered_map<PrincipalId, Ed25519PublicKey> keys_;
};

class HmacSignerImpl final : public Signer {
 public:
  HmacSignerImpl(PrincipalId id, Key32 group_key)
      : id_(id), group_key_(group_key) {}

  [[nodiscard]] Bytes sign(ByteView message) const override {
    const Bytes data = id_prefixed(id_, message);
    const Digest mac = hmac_sha256(
        ByteView{group_key_.data(), group_key_.size()},
        ByteView{data.data(), data.size()});
    return Bytes(mac.bytes.begin(), mac.bytes.end());
  }
  [[nodiscard]] PrincipalId id() const noexcept override { return id_; }

 private:
  PrincipalId id_;
  Key32 group_key_;
};

class HmacVerifierImpl final : public Verifier {
 public:
  HmacVerifierImpl(Key32 group_key,
                   std::unordered_map<PrincipalId, bool> known)
      : group_key_(group_key), known_(std::move(known)) {}

  [[nodiscard]] bool verify(PrincipalId signer, ByteView message,
                            ByteView sig) const override {
    if (!known_.contains(signer)) return false;
    const Bytes data = id_prefixed(signer, message);
    const Digest mac = hmac_sha256(
        ByteView{group_key_.data(), group_key_.size()},
        ByteView{data.data(), data.size()});
    return ct_equal(mac.view(), sig);
  }
  [[nodiscard]] bool knows(PrincipalId signer) const override {
    return known_.contains(signer);
  }

 private:
  Key32 group_key_;
  std::unordered_map<PrincipalId, bool> known_;
};

}  // namespace

struct KeyRing::Impl {
  Rng rng;
  Key32 group_key{};
  std::unordered_map<PrincipalId, std::shared_ptr<const Signer>> signers;
  std::unordered_map<PrincipalId, Ed25519PublicKey> public_keys;
  mutable std::mutex mutex;
  mutable std::shared_ptr<const Verifier> cached_verifier;

  explicit Impl(std::uint64_t seed) : rng(seed) {}
};

KeyRing::KeyRing(Scheme scheme, std::uint64_t seed)
    : scheme_(scheme), impl_(std::make_unique<Impl>(seed)) {
  if (scheme_ == Scheme::HmacShared) {
    for (auto& b : impl_->group_key) {
      b = static_cast<std::uint8_t>(impl_->rng.next_u64());
    }
  }
}

KeyRing::~KeyRing() = default;

void KeyRing::add_principal(PrincipalId id) {
  const std::scoped_lock lock(impl_->mutex);
  if (impl_->signers.contains(id)) {
    throw std::invalid_argument("principal already registered");
  }
  if (scheme_ == Scheme::Ed25519) {
    Ed25519SecretKey key = Ed25519SecretKey::generate(impl_->rng);
    impl_->public_keys.emplace(id, key.public_key());
    impl_->signers.emplace(
        id, std::make_shared<Ed25519SignerImpl>(id, std::move(key)));
  } else {
    impl_->signers.emplace(
        id, std::make_shared<HmacSignerImpl>(id, impl_->group_key));
  }
  impl_->cached_verifier.reset();
}

std::shared_ptr<const Signer> KeyRing::signer(PrincipalId id) const {
  const std::scoped_lock lock(impl_->mutex);
  const auto it = impl_->signers.find(id);
  if (it == impl_->signers.end()) {
    throw std::out_of_range("unknown principal");
  }
  return it->second;
}

std::shared_ptr<const Verifier> KeyRing::verifier() const {
  const std::scoped_lock lock(impl_->mutex);
  if (!impl_->cached_verifier) {
    if (scheme_ == Scheme::Ed25519) {
      impl_->cached_verifier =
          std::make_shared<Ed25519VerifierImpl>(impl_->public_keys);
    } else {
      std::unordered_map<PrincipalId, bool> known;
      for (const auto& [id, signer] : impl_->signers) known.emplace(id, true);
      impl_->cached_verifier = std::make_shared<HmacVerifierImpl>(
          impl_->group_key, std::move(known));
    }
  }
  return impl_->cached_verifier;
}

}  // namespace sbft::crypto
