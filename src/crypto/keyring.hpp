// Principal key management and the pluggable signature scheme.
//
// Every protocol participant (PBFT replica, SplitBFT enclave, hybrid USIG,
// client) is a *principal* with a numeric id. A KeyRing is built once at
// cluster setup: it generates a key pair per principal, hands each principal
// a private Signer (only that principal's secret), and exposes a shared
// immutable Verifier holding only public material. This mirrors SGX
// provisioning where each enclave owns its private key (paper §2.1) and all
// public keys are known.
//
// Two schemes:
//  * Ed25519     — real signatures; default for all correctness tests.
//  * HmacShared  — HMAC-SHA256 under a group key, bound to the signer id.
//                  Used by the virtual-time performance benchmarks where the
//                  modeled signature cost is charged separately (documented
//                  in DESIGN.md as a calibration substitution).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/ed25519.hpp"
#include "crypto/hmac.hpp"

namespace sbft::crypto {

using PrincipalId = std::uint64_t;

enum class Scheme : std::uint8_t { Ed25519 = 0, HmacShared = 1 };

/// A principal's private signing capability.
class Signer {
 public:
  virtual ~Signer() = default;
  [[nodiscard]] virtual Bytes sign(ByteView message) const = 0;
  [[nodiscard]] virtual PrincipalId id() const noexcept = 0;
};

/// Shared, immutable verification capability (public material only).
class Verifier {
 public:
  virtual ~Verifier() = default;
  /// True iff `sig` is `signer`'s signature on `message`.
  [[nodiscard]] virtual bool verify(PrincipalId signer, ByteView message,
                                    ByteView sig) const = 0;
  /// True if the principal is known to this verifier.
  [[nodiscard]] virtual bool knows(PrincipalId signer) const = 0;
};

/// Builds the key material for a fixed set of principals.
class KeyRing {
 public:
  KeyRing(Scheme scheme, std::uint64_t seed);
  ~KeyRing();
  KeyRing(const KeyRing&) = delete;
  KeyRing& operator=(const KeyRing&) = delete;

  /// Generates a key pair for `id`. Must be called before freezing.
  void add_principal(PrincipalId id);

  /// Returns the private signer for a registered principal.
  [[nodiscard]] std::shared_ptr<const Signer> signer(PrincipalId id) const;

  /// Returns the shared verifier over all registered principals.
  [[nodiscard]] std::shared_ptr<const Verifier> verifier() const;

  [[nodiscard]] Scheme scheme() const noexcept { return scheme_; }

 private:
  struct Impl;
  Scheme scheme_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace sbft::crypto
