#include "crypto/merkle.hpp"

#include <algorithm>

#include "crypto/sha256.hpp"

namespace sbft::crypto {
namespace {

constexpr std::uint8_t kLeafTag = 0x00;
constexpr std::uint8_t kNodeTag = 0x01;

[[nodiscard]] Digest hash_node(const Digest& left,
                               const Digest& right) noexcept {
  Sha256 h;
  h.update(ByteView{&kNodeTag, 1});
  h.update(left.view());
  h.update(right.view());
  return h.finalize();
}

void put_u64_le(Sha256& h, std::uint64_t v) noexcept {
  std::uint8_t buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
  h.update(ByteView{buf, sizeof buf});
}

}  // namespace

Digest merkle_leaf(ByteView chunk) noexcept {
  Sha256 h;
  h.update(ByteView{&kLeafTag, 1});
  h.update(chunk);
  return h.finalize();
}

MerkleTree::MerkleTree(std::vector<Digest> leaves) {
  if (leaves.empty()) leaves.push_back(merkle_leaf({}));
  levels_.push_back(std::move(leaves));
  while (levels_.back().size() > 1) {
    const auto& below = levels_.back();
    std::vector<Digest> above;
    above.reserve((below.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < below.size(); i += 2) {
      above.push_back(hash_node(below[i], below[i + 1]));
    }
    if (below.size() % 2 != 0) above.push_back(below.back());  // promote
    levels_.push_back(std::move(above));
  }
}

MerkleProof MerkleTree::proof(std::size_t index) const {
  MerkleProof path;
  for (std::size_t level = 0; level + 1 < levels_.size(); ++level) {
    const auto& nodes = levels_[level];
    const std::size_t sibling = index ^ 1u;
    if (sibling < nodes.size()) {
      path.push_back({nodes[sibling], (sibling & 1u) == 0});
    }
    // A promoted odd tail has no sibling at this level; it rises as-is.
    index /= 2;
  }
  return path;
}

bool MerkleTree::verify(const Digest& root, std::size_t index,
                        std::size_t leaf_count, ByteView chunk,
                        const MerkleProof& path) noexcept {
  if (leaf_count == 0 || index >= leaf_count) return false;
  // Replay the reduction shape: at each level the node either has a
  // sibling (consume one proof step, on the correct side) or is a
  // promoted odd tail (consume nothing). This pins the proof length AND
  // the left/right orientation of every step to (index, leaf_count).
  Digest acc = merkle_leaf(chunk);
  std::size_t nodes = leaf_count;
  std::size_t pos = index;
  std::size_t step = 0;
  while (nodes > 1) {
    const std::size_t sibling = pos ^ 1u;
    if (sibling < nodes) {
      if (step >= path.size()) return false;
      const bool expect_left = (sibling & 1u) == 0;
      if (path[step].sibling_is_left != expect_left) return false;
      acc = expect_left ? hash_node(path[step].sibling, acc)
                        : hash_node(acc, path[step].sibling);
      ++step;
    }
    pos /= 2;
    nodes = (nodes + 1) / 2;
  }
  if (step != path.size()) return false;
  return acc == root;
}

Digest SnapshotManifest::commitment() const noexcept {
  static constexpr char kDomain[] = "sbft.manifest.v1";
  Sha256 h;
  h.update(ByteView{reinterpret_cast<const std::uint8_t*>(kDomain),
                    sizeof(kDomain) - 1});
  put_u64_le(h, total_bytes);
  put_u64_le(h, chunk_bytes);
  h.update(root.view());
  return h.finalize();
}

MerkleTree build_snapshot_tree(ByteView snapshot, std::uint64_t chunk_bytes) {
  std::vector<Digest> leaves;
  if (chunk_bytes == 0) chunk_bytes = 1;
  const std::size_t step = static_cast<std::size_t>(chunk_bytes);
  leaves.reserve(snapshot.size() / step + 1);
  for (std::size_t off = 0; off < snapshot.size(); off += step) {
    const std::size_t len = std::min(step, snapshot.size() - off);
    leaves.push_back(merkle_leaf(snapshot.subspan(off, len)));
  }
  if (leaves.empty()) leaves.push_back(merkle_leaf({}));
  return MerkleTree{std::move(leaves)};
}

}  // namespace sbft::crypto
