// Merkle commitments over chunked snapshots.
//
// A snapshot of `total_bytes` is cut into fixed-size chunks of
// `chunk_bytes` (the final chunk may be short; an empty snapshot is one
// empty chunk so every snapshot has at least one leaf). The tree hashes
//
//   leaf(i)  = H(0x00 || chunk_i)
//   node     = H(0x01 || left || right)
//
// with the last node of an odd level promoted unchanged (Bitcoin-style
// duplication would let a forger equivocate between n and n+1 leaves;
// promotion keeps the leaf count bound into the structure). Domain
// separation between leaf and interior hashes blocks second-preimage
// splices of interior nodes as leaves.
//
// The checkpoint digest is NOT the root alone: SnapshotManifest binds
// (total_bytes, chunk_bytes, root) into one commitment digest, so the
// 2f+1 checkpoint certificate also authenticates the transfer geometry —
// a Byzantine responder cannot lie about the snapshot size or chunk size
// to stall or blow up a recovering replica.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"

namespace sbft::crypto {

/// Sibling path from a leaf to the root, bottom-up. Each element carries
/// the sibling digest and which side it sits on.
struct MerkleStep {
  Digest sibling;
  bool sibling_is_left{false};
};
using MerkleProof = std::vector<MerkleStep>;

/// Upper bound on a plausible proof length (2^40 leaves is far beyond any
/// snapshot we can hold); deserializers reject longer paths before
/// allocating.
inline constexpr std::size_t kMaxMerkleProofLen = 40;

/// Hashes one chunk as a leaf (domain-separated).
[[nodiscard]] Digest merkle_leaf(ByteView chunk) noexcept;

/// Merkle tree over an indexed sequence of leaf digests. Built once on
/// the serving side; proofs are O(log n) lookups into the stored levels.
class MerkleTree {
 public:
  explicit MerkleTree(std::vector<Digest> leaves);

  [[nodiscard]] const Digest& root() const noexcept {
    return levels_.back().front();
  }
  [[nodiscard]] std::size_t leaf_count() const noexcept {
    return levels_.front().size();
  }

  /// Sibling path for leaf `index` (must be < leaf_count()).
  [[nodiscard]] MerkleProof proof(std::size_t index) const;

  /// Recomputes the root from `chunk` + `path` and compares. `index` and
  /// `leaf_count` must come from an authenticated manifest: the path
  /// length is checked against the tree shape they imply, so a forger
  /// cannot present a truncated path that verifies an interior node.
  [[nodiscard]] static bool verify(const Digest& root, std::size_t index,
                                   std::size_t leaf_count, ByteView chunk,
                                   const MerkleProof& path) noexcept;

 private:
  // levels_[0] = leaves, levels_.back() = {root}.
  std::vector<std::vector<Digest>> levels_;
};

/// The transfer geometry bound into the checkpoint digest.
struct SnapshotManifest {
  std::uint64_t total_bytes{0};
  std::uint64_t chunk_bytes{0};  // > 0
  Digest root{};

  [[nodiscard]] friend bool operator==(const SnapshotManifest&,
                                       const SnapshotManifest&) = default;

  /// Number of chunks (>= 1; an empty snapshot is one empty chunk).
  [[nodiscard]] std::uint64_t chunk_count() const noexcept {
    if (chunk_bytes == 0) return 0;  // invalid manifest
    if (total_bytes == 0) return 1;
    return (total_bytes + chunk_bytes - 1) / chunk_bytes;
  }

  /// Size of chunk `index` in bytes.
  [[nodiscard]] std::uint64_t chunk_size(std::uint64_t index) const noexcept {
    if (total_bytes == 0) return 0;
    const std::uint64_t start = index * chunk_bytes;
    const std::uint64_t end = start + chunk_bytes;
    return (end > total_bytes ? total_bytes : end) - start;
  }

  /// The digest the checkpoint certificate signs:
  /// H("sbft.manifest.v1" || total_bytes || chunk_bytes || root).
  [[nodiscard]] Digest commitment() const noexcept;
};

/// Chunks `snapshot` with `chunk_bytes`-sized slices and builds the tree.
[[nodiscard]] MerkleTree build_snapshot_tree(ByteView snapshot,
                                             std::uint64_t chunk_bytes);

}  // namespace sbft::crypto
