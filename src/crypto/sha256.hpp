// SHA-256 (FIPS 180-4). Streaming and one-shot interfaces.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace sbft::crypto {

class Sha256 {
 public:
  Sha256() noexcept { reset(); }

  void reset() noexcept;
  void update(ByteView data) noexcept;
  /// Finishes the hash. The object must be reset() before reuse.
  [[nodiscard]] Digest finalize() noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_{0};
  std::uint64_t total_len_{0};
};

/// One-shot SHA-256.
[[nodiscard]] Digest sha256(ByteView data) noexcept;

/// SHA-256 over the concatenation of two buffers (avoids a copy).
[[nodiscard]] Digest sha256_concat(ByteView a, ByteView b) noexcept;

}  // namespace sbft::crypto
