// Ed25519 signatures (RFC 8032).
//
// Every enclave and every client owns an Ed25519 key pair; replica-to-replica
// protocol messages are signed (the paper signs with ring's ED25519).
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace sbft::crypto {

struct Ed25519PublicKey {
  std::array<std::uint8_t, 32> bytes{};

  [[nodiscard]] friend bool operator==(const Ed25519PublicKey&,
                                       const Ed25519PublicKey&) = default;
  [[nodiscard]] ByteView view() const noexcept {
    return ByteView{bytes.data(), bytes.size()};
  }
};

struct Ed25519Signature {
  std::array<std::uint8_t, 64> bytes{};

  [[nodiscard]] friend bool operator==(const Ed25519Signature&,
                                       const Ed25519Signature&) = default;
  [[nodiscard]] ByteView view() const noexcept {
    return ByteView{bytes.data(), bytes.size()};
  }
};

/// Private signing key (seed + cached public key).
class Ed25519SecretKey {
 public:
  /// Deterministic key from a 32-byte seed.
  [[nodiscard]] static Ed25519SecretKey from_seed(
      const std::array<std::uint8_t, 32>& seed);
  /// Random key from the given generator.
  [[nodiscard]] static Ed25519SecretKey generate(Rng& rng);

  [[nodiscard]] const Ed25519PublicKey& public_key() const noexcept {
    return public_key_;
  }
  [[nodiscard]] Ed25519Signature sign(ByteView message) const;

 private:
  Ed25519SecretKey() = default;

  std::array<std::uint8_t, 32> seed_{};
  Ed25519PublicKey public_key_{};
};

/// True iff `sig` is a valid signature on `message` under `key`.
[[nodiscard]] bool ed25519_verify(const Ed25519PublicKey& key, ByteView message,
                                  const Ed25519Signature& sig) noexcept;

}  // namespace sbft::crypto
