// X25519 Diffie-Hellman (RFC 7748).
//
// Clients establish session keys with the Execution enclave, and Execution
// enclaves derive pairwise state-transfer keys, via X25519 + HKDF.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/hmac.hpp"  // Key32

namespace sbft::crypto {

/// shared = scalar * point. Returns the 32-byte shared secret.
[[nodiscard]] Key32 x25519(const Key32& scalar, const Key32& point) noexcept;

/// public = scalar * base point (9).
[[nodiscard]] Key32 x25519_base(const Key32& scalar) noexcept;

/// Random X25519 private scalar.
[[nodiscard]] Key32 x25519_keygen(Rng& rng);

}  // namespace sbft::crypto
