#include "crypto/ed25519.hpp"

#include <cstring>

#include "crypto/curve25519_internal.hpp"
#include "crypto/sha512.hpp"

namespace sbft::crypto {

namespace {

// Group order L = 2^252 + 27742317777372353535851937790883648493.
constexpr std::array<std::int64_t, 32> kOrder = {
    0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12, 0x58, 0xd6, 0x9c, 0xf7,
    0xa2, 0xde, 0xf9, 0xde, 0x14, 0,    0,    0,    0,    0,    0,
    0,    0,    0,    0,    0,    0,    0,    0,    0,    0x10};

/// Reduces a 64-limb little-endian byte expansion mod L into out[0..31].
void mod_order(std::uint8_t out[32], std::int64_t x[64]) noexcept {
  for (int i = 63; i >= 32; --i) {
    std::int64_t c = 0;
    int j;
    for (j = i - 32; j < i - 12; ++j) {
      x[j] += c - 16 * x[i] * kOrder[j - (i - 32)];
      c = (x[j] + 128) >> 8;
      x[j] -= c << 8;
    }
    x[j] += c;
    x[i] = 0;
  }
  std::int64_t c = 0;
  for (int j = 0; j < 32; ++j) {
    x[j] += c - (x[31] >> 4) * kOrder[j];
    c = x[j] >> 8;
    x[j] &= 255;
  }
  for (int j = 0; j < 32; ++j) x[j] -= c * kOrder[j];
  for (int i = 0; i < 32; ++i) {
    x[i + 1] += x[i] >> 8;
    out[i] = static_cast<std::uint8_t>(x[i] & 255);
  }
}

/// Reduces a 64-byte hash output to a scalar mod L, in place (first 32 bytes).
void reduce64(std::uint8_t r[64]) noexcept {
  std::int64_t x[64];
  for (int i = 0; i < 64; ++i) x[i] = r[i];
  for (int i = 0; i < 64; ++i) r[i] = 0;
  mod_order(r, x);
}

void clamp(std::uint8_t d[64]) noexcept {
  d[0] &= 248;
  d[31] &= 127;
  d[31] |= 64;
}

}  // namespace

Ed25519SecretKey Ed25519SecretKey::from_seed(
    const std::array<std::uint8_t, 32>& seed) {
  Ed25519SecretKey key;
  key.seed_ = seed;
  Digest64 d = sha512(ByteView{seed.data(), seed.size()});
  clamp(d.data());
  fe::Point p;
  fe::scalar_base(p, d.data());
  fe::point_pack(key.public_key_.bytes.data(), p);
  return key;
}

Ed25519SecretKey Ed25519SecretKey::generate(Rng& rng) {
  std::array<std::uint8_t, 32> seed;
  for (auto& b : seed) b = static_cast<std::uint8_t>(rng.next_u64());
  return from_seed(seed);
}

Ed25519Signature Ed25519SecretKey::sign(ByteView message) const {
  Digest64 d = sha512(ByteView{seed_.data(), seed_.size()});
  clamp(d.data());

  // r = H(d[32..64] || message) mod L.
  Sha512 h;
  h.update(ByteView{d.data() + 32, 32});
  h.update(message);
  Digest64 r = h.finalize();
  reduce64(r.data());

  Ed25519Signature sig;
  fe::Point p;
  fe::scalar_base(p, r.data());
  fe::point_pack(sig.bytes.data(), p);

  // k = H(R || pk || message) mod L.
  Sha512 h2;
  h2.update(ByteView{sig.bytes.data(), 32});
  h2.update(public_key_.view());
  h2.update(message);
  Digest64 k = h2.finalize();
  reduce64(k.data());

  // s = (r + k * a) mod L.
  std::int64_t x[64] = {};
  for (int i = 0; i < 32; ++i) x[i] = r[i];
  for (int i = 0; i < 32; ++i) {
    for (int j = 0; j < 32; ++j) {
      x[i + j] += static_cast<std::int64_t>(k[i]) * d[j];
    }
  }
  mod_order(sig.bytes.data() + 32, x);
  return sig;
}

bool ed25519_verify(const Ed25519PublicKey& key, ByteView message,
                    const Ed25519Signature& sig) noexcept {
  fe::Point neg_a;
  if (!fe::point_unpack_neg(neg_a, key.bytes.data())) return false;

  // k = H(R || pk || message) mod L.
  Sha512 h;
  h.update(ByteView{sig.bytes.data(), 32});
  h.update(key.view());
  h.update(message);
  Digest64 k = h.finalize();
  reduce64(k.data());

  // Check R == s*B - k*A  (computed as s*B + k*(-A)).
  fe::Point p, q;
  fe::scalar_mult(p, neg_a, k.data());
  fe::scalar_base(q, sig.bytes.data() + 32);
  fe::point_add(p, q);

  std::uint8_t packed[32];
  fe::point_pack(packed, p);
  return ct_equal(ByteView{packed, 32}, ByteView{sig.bytes.data(), 32});
}

}  // namespace sbft::crypto
