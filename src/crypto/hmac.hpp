// HMAC-SHA256 (RFC 2104) and a small HKDF-style key derivation helper.
//
// Used for client request/reply authentication (the paper uses HMAC-SHA2 for
// clients and signatures between replicas) and for deriving session keys.
#pragma once

#include <array>
#include <string_view>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace sbft::crypto {

using Key32 = std::array<std::uint8_t, 32>;

[[nodiscard]] Digest hmac_sha256(ByteView key, ByteView data) noexcept;

/// HMAC over the concatenation of two buffers.
[[nodiscard]] Digest hmac_sha256_concat(ByteView key, ByteView a,
                                        ByteView b) noexcept;

/// Verifies a MAC in constant time.
[[nodiscard]] bool hmac_verify(ByteView key, ByteView data,
                               ByteView mac) noexcept;

/// Derives a 32-byte subkey: HMAC(key, label || context). This is
/// HKDF-Expand with a single block, sufficient for 32-byte outputs.
[[nodiscard]] Key32 derive_key(ByteView key, std::string_view label,
                               ByteView context = {}) noexcept;

}  // namespace sbft::crypto
