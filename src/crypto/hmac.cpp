#include "crypto/hmac.hpp"

#include <cstring>

namespace sbft::crypto {

namespace {

struct HmacState {
  Sha256 inner;
  std::array<std::uint8_t, 64> opad;
};

[[nodiscard]] HmacState hmac_begin(ByteView key) noexcept {
  std::array<std::uint8_t, 64> block{};
  if (key.size() > 64) {
    const Digest kd = sha256(key);
    std::memcpy(block.data(), kd.bytes.data(), kd.bytes.size());
  } else if (!key.empty()) {
    // key.data() may be null for an empty view; null memcpy source is UB.
    std::memcpy(block.data(), key.data(), key.size());
  }
  HmacState st;
  std::array<std::uint8_t, 64> ipad;
  for (int i = 0; i < 64; ++i) {
    ipad[i] = static_cast<std::uint8_t>(block[i] ^ 0x36);
    st.opad[i] = static_cast<std::uint8_t>(block[i] ^ 0x5c);
  }
  st.inner.update(ByteView{ipad.data(), ipad.size()});
  return st;
}

[[nodiscard]] Digest hmac_end(HmacState& st) noexcept {
  const Digest inner_digest = st.inner.finalize();
  Sha256 outer;
  outer.update(ByteView{st.opad.data(), st.opad.size()});
  outer.update(inner_digest.view());
  return outer.finalize();
}

}  // namespace

Digest hmac_sha256(ByteView key, ByteView data) noexcept {
  HmacState st = hmac_begin(key);
  st.inner.update(data);
  return hmac_end(st);
}

Digest hmac_sha256_concat(ByteView key, ByteView a, ByteView b) noexcept {
  HmacState st = hmac_begin(key);
  st.inner.update(a);
  st.inner.update(b);
  return hmac_end(st);
}

bool hmac_verify(ByteView key, ByteView data, ByteView mac) noexcept {
  const Digest expected = hmac_sha256(key, data);
  return ct_equal(expected.view(), mac);
}

Key32 derive_key(ByteView key, std::string_view label,
                 ByteView context) noexcept {
  const Digest d = hmac_sha256_concat(
      key,
      ByteView{reinterpret_cast<const std::uint8_t*>(label.data()),
               label.size()},
      context);
  Key32 out;
  std::memcpy(out.data(), d.bytes.data(), out.size());
  return out;
}

}  // namespace sbft::crypto
