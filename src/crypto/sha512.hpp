// SHA-512 (FIPS 180-4). Required by Ed25519 signing/verification.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace sbft::crypto {

using Digest64 = std::array<std::uint8_t, 64>;

class Sha512 {
 public:
  Sha512() noexcept { reset(); }

  void reset() noexcept;
  void update(ByteView data) noexcept;
  [[nodiscard]] Digest64 finalize() noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint64_t, 8> state_{};
  std::array<std::uint8_t, 128> buffer_{};
  std::size_t buffer_len_{0};
  std::uint64_t total_len_{0};
};

[[nodiscard]] Digest64 sha512(ByteView data) noexcept;

}  // namespace sbft::crypto
