#include "crypto/curve25519_internal.hpp"

namespace sbft::crypto::fe {

void carry(Gf& o) noexcept {
  for (int i = 0; i < 16; ++i) {
    o[i] += std::int64_t{1} << 16;
    const std::int64_t c = o[i] >> 16;
    o[(i + 1) * (i < 15)] += c - 1 + 37 * (c - 1) * (i == 15);
    o[i] -= c << 16;
  }
}

void cswap(Gf& a, Gf& b, int bit) noexcept {
  const std::int64_t mask = ~(static_cast<std::int64_t>(bit) - 1);
  for (int i = 0; i < 16; ++i) {
    const std::int64_t t = mask & (a[i] ^ b[i]);
    a[i] ^= t;
    b[i] ^= t;
  }
}

void add(Gf& o, const Gf& a, const Gf& b) noexcept {
  for (int i = 0; i < 16; ++i) o[i] = a[i] + b[i];
}

void sub(Gf& o, const Gf& a, const Gf& b) noexcept {
  for (int i = 0; i < 16; ++i) o[i] = a[i] - b[i];
}

void mul(Gf& o, const Gf& a, const Gf& b) noexcept {
  std::int64_t t[31] = {};
  for (int i = 0; i < 16; ++i) {
    for (int j = 0; j < 16; ++j) {
      t[i + j] += a[i] * b[j];
    }
  }
  for (int i = 0; i < 15; ++i) t[i] += 38 * t[i + 16];
  for (int i = 0; i < 16; ++i) o[i] = t[i];
  carry(o);
  carry(o);
}

void sq(Gf& o, const Gf& a) noexcept { mul(o, a, a); }

void invert(Gf& o, const Gf& a) noexcept {
  // a^(p-2); p-2 = 2^255 - 21 has zero bits only at positions 2 and 4.
  Gf c = a;
  for (int i = 253; i >= 0; --i) {
    sq(c, c);
    if (i != 2 && i != 4) mul(c, c, a);
  }
  o = c;
}

void pow2523(Gf& o, const Gf& a) noexcept {
  // a^((p-5)/8); (p-5)/8 = 2^252 - 3 has a zero bit only at position 1.
  Gf c = a;
  for (int i = 250; i >= 0; --i) {
    sq(c, c);
    if (i != 1) mul(c, c, a);
  }
  o = c;
}

void pow_bytes(Gf& o, const Gf& base,
               const std::array<std::uint8_t, 32>& exp) noexcept {
  Gf result = kOne;
  for (int i = 255; i >= 0; --i) {
    sq(result, result);
    if ((exp[static_cast<std::size_t>(i / 8)] >> (i & 7)) & 1) {
      mul(result, result, base);
    }
  }
  o = result;
}

void pack(std::uint8_t out[32], const Gf& n) noexcept {
  Gf t = n;
  carry(t);
  carry(t);
  carry(t);
  for (int pass = 0; pass < 2; ++pass) {
    Gf m;
    m[0] = t[0] - 0xffed;
    for (int i = 1; i < 15; ++i) {
      m[i] = t[i] - 0xffff - ((m[i - 1] >> 16) & 1);
      m[i - 1] &= 0xffff;
    }
    m[15] = t[15] - 0x7fff - ((m[14] >> 16) & 1);
    const int borrow = static_cast<int>((m[15] >> 16) & 1);
    m[14] &= 0xffff;
    cswap(t, m, 1 - borrow);
  }
  for (int i = 0; i < 16; ++i) {
    out[2 * i] = static_cast<std::uint8_t>(t[i] & 0xff);
    out[2 * i + 1] = static_cast<std::uint8_t>(t[i] >> 8);
  }
}

void unpack(Gf& o, const std::uint8_t in[32]) noexcept {
  for (int i = 0; i < 16; ++i) {
    o[i] = in[2 * i] + (static_cast<std::int64_t>(in[2 * i + 1]) << 8);
  }
  o[15] &= 0x7fff;
}

void from_u64(Gf& o, std::uint64_t v) noexcept {
  o = kZero;
  for (int i = 0; i < 4; ++i) {
    o[i] = static_cast<std::int64_t>((v >> (16 * i)) & 0xffff);
  }
}

int parity(const Gf& a) noexcept {
  std::uint8_t d[32];
  pack(d, a);
  return d[0] & 1;
}

bool eq(const Gf& a, const Gf& b) noexcept {
  std::uint8_t da[32], db[32];
  pack(da, a);
  pack(db, b);
  std::uint8_t acc = 0;
  for (int i = 0; i < 32; ++i) acc |= static_cast<std::uint8_t>(da[i] ^ db[i]);
  return acc == 0;
}

const Constants& constants() noexcept {
  static const Constants kConstants = [] {
    Constants c;
    // d = -121665 / 121666 mod p.
    Gf num, den, den_inv;
    from_u64(num, 121665);
    sub(num, kZero, num);
    from_u64(den, 121666);
    invert(den_inv, den);
    mul(c.d, num, den_inv);
    add(c.d2, c.d, c.d);

    // sqrt(-1) = 2^((p-1)/4); (p-1)/4 = 2^253 - 5.
    std::array<std::uint8_t, 32> exp{};
    exp[0] = 0xfb;
    for (int i = 1; i < 31; ++i) exp[i] = 0xff;
    exp[31] = 0x1f;
    Gf two;
    from_u64(two, 2);
    pow_bytes(c.sqrt_m1, two, exp);

    // Base point: y = 4/5, x = the even square root of (y^2-1)/(d y^2+1).
    Gf four, five, five_inv;
    from_u64(four, 4);
    from_u64(five, 5);
    invert(five_inv, five);
    mul(c.base_y, four, five_inv);

    Gf y2, u, v, x;
    sq(y2, c.base_y);
    sub(u, y2, kOne);       // u = y^2 - 1
    mul(v, y2, c.d);
    add(v, v, kOne);        // v = d y^2 + 1
    // x = u v^3 (u v^7)^((p-5)/8), then fix up by sqrt(-1) if needed.
    Gf v3, v7, t;
    sq(v3, v);
    mul(v3, v3, v);         // v^3
    sq(v7, v3);
    mul(v7, v7, v);         // v^7
    mul(t, u, v7);
    pow2523(t, t);
    mul(t, t, u);
    mul(x, t, v3);
    Gf chk;
    sq(chk, x);
    mul(chk, chk, v);
    if (!eq(chk, u)) mul(x, x, c.sqrt_m1);
    // Choose the even root (the standard base point has even x).
    if (parity(x) == 1) sub(x, kZero, x);
    c.base_x = x;
    return c;
  }();
  return kConstants;
}

void point_add(Point& p, const Point& q) noexcept {
  const Constants& k = constants();
  Gf a, b, c, d, t, e, f, g, h;
  sub(a, p[1], p[0]);
  sub(t, q[1], q[0]);
  mul(a, a, t);
  add(b, p[0], p[1]);
  add(t, q[0], q[1]);
  mul(b, b, t);
  mul(c, p[3], q[3]);
  mul(c, c, k.d2);
  mul(d, p[2], q[2]);
  add(d, d, d);
  sub(e, b, a);
  sub(f, d, c);
  add(g, d, c);
  add(h, b, a);
  mul(p[0], e, f);
  mul(p[1], h, g);
  mul(p[2], g, f);
  mul(p[3], e, h);
}

namespace {
void point_cswap(Point& p, Point& q, int bit) noexcept {
  for (int i = 0; i < 4; ++i) cswap(p[i], q[i], bit);
}
}  // namespace

void scalar_mult(Point& p, Point& q, const std::uint8_t s[32]) noexcept {
  p[0] = kZero;
  p[1] = kOne;
  p[2] = kOne;
  p[3] = kZero;
  for (int i = 255; i >= 0; --i) {
    const int bit = (s[i / 8] >> (i & 7)) & 1;
    point_cswap(p, q, bit);
    point_add(q, p);
    point_add(p, p);
    point_cswap(p, q, bit);
  }
}

void scalar_base(Point& p, const std::uint8_t s[32]) noexcept {
  const Constants& k = constants();
  Point q;
  q[0] = k.base_x;
  q[1] = k.base_y;
  q[2] = kOne;
  mul(q[3], k.base_x, k.base_y);
  scalar_mult(p, q, s);
}

void point_pack(std::uint8_t out[32], const Point& p) noexcept {
  Gf zi, tx, ty;
  invert(zi, p[2]);
  mul(tx, p[0], zi);
  mul(ty, p[1], zi);
  pack(out, ty);
  out[31] ^= static_cast<std::uint8_t>(parity(tx) << 7);
}

bool point_unpack_neg(Point& p, const std::uint8_t in[32]) noexcept {
  const Constants& k = constants();
  Gf t, chk, num, den, den2, den4, den6;
  p[2] = kOne;
  unpack(p[1], in);
  sq(num, p[1]);
  mul(den, num, k.d);
  sub(num, num, p[2]);
  add(den, p[2], den);

  sq(den2, den);
  sq(den4, den2);
  mul(den6, den4, den2);
  mul(t, den6, num);
  mul(t, t, den);

  pow2523(t, t);
  mul(t, t, num);
  mul(t, t, den);
  mul(t, t, den);
  mul(p[0], t, den);

  sq(chk, p[0]);
  mul(chk, chk, den);
  if (!eq(chk, num)) mul(p[0], p[0], k.sqrt_m1);
  sq(chk, p[0]);
  mul(chk, chk, den);
  if (!eq(chk, num)) return false;

  if (parity(p[0]) == (in[31] >> 7)) sub(p[0], kZero, p[0]);
  mul(p[3], p[0], p[1]);
  return true;
}

}  // namespace sbft::crypto::fe
