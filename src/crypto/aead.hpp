// ChaCha20-Poly1305 AEAD (RFC 8439).
//
// Encrypts client requests/replies end-to-end to the Execution enclave and
// implements enclave sealing / the protected filesystem.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "crypto/hmac.hpp"  // Key32

namespace sbft::crypto {

using Nonce12 = std::array<std::uint8_t, 12>;
using Tag16 = std::array<std::uint8_t, 16>;

/// Raw ChaCha20 keystream XOR. `counter` is the initial block counter.
void chacha20_xor(const Key32& key, const Nonce12& nonce, std::uint32_t counter,
                  ByteView input, std::uint8_t* output) noexcept;

/// One-shot Poly1305 MAC.
[[nodiscard]] Tag16 poly1305(const Key32& key, ByteView data) noexcept;

/// Encrypts `plaintext`; returns ciphertext || 16-byte tag.
[[nodiscard]] Bytes aead_seal(const Key32& key, const Nonce12& nonce,
                              ByteView aad, ByteView plaintext);

/// Decrypts ciphertext||tag; nullopt if authentication fails.
[[nodiscard]] std::optional<Bytes> aead_open(const Key32& key,
                                             const Nonce12& nonce, ByteView aad,
                                             ByteView sealed);

/// Builds a deterministic nonce from a 64-bit sequence (low 8 bytes LE) and a
/// 32-bit channel id (high 4 bytes LE). Each (key, channel, seq) is unique.
[[nodiscard]] Nonce12 make_nonce(std::uint32_t channel,
                                 std::uint64_t seq) noexcept;

}  // namespace sbft::crypto
