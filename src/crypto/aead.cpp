#include "crypto/aead.hpp"

#include <bit>
#include <cstring>

namespace sbft::crypto {

namespace {

[[nodiscard]] constexpr std::uint32_t rotl(std::uint32_t x, int n) noexcept {
  return std::rotl(x, n);
}

[[nodiscard]] std::uint32_t load_le32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

void store_le32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                   std::uint32_t& d) noexcept {
  a += b;
  d = rotl(d ^ a, 16);
  c += d;
  b = rotl(b ^ c, 12);
  a += b;
  d = rotl(d ^ a, 8);
  c += d;
  b = rotl(b ^ c, 7);
}

void chacha20_block(const Key32& key, const Nonce12& nonce,
                    std::uint32_t counter,
                    std::array<std::uint8_t, 64>& out) noexcept {
  std::array<std::uint32_t, 16> state;
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) {
    state[4 + i] = load_le32(key.data() + 4 * i);
  }
  state[12] = counter;
  for (int i = 0; i < 3; ++i) {
    state[13 + i] = load_le32(nonce.data() + 4 * i);
  }

  std::array<std::uint32_t, 16> x = state;
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    store_le32(out.data() + 4 * i, x[i] + state[i]);
  }
}

}  // namespace

void chacha20_xor(const Key32& key, const Nonce12& nonce, std::uint32_t counter,
                  ByteView input, std::uint8_t* output) noexcept {
  std::array<std::uint8_t, 64> block;
  std::size_t offset = 0;
  while (offset < input.size()) {
    chacha20_block(key, nonce, counter++, block);
    const std::size_t take = std::min<std::size_t>(64, input.size() - offset);
    for (std::size_t i = 0; i < take; ++i) {
      output[offset + i] = static_cast<std::uint8_t>(input[offset + i] ^
                                                     block[i]);
    }
    offset += take;
  }
}

Tag16 poly1305(const Key32& key, ByteView data) noexcept {
  // 26-bit limb implementation (poly1305-donna style).
  const std::uint32_t r0 = load_le32(key.data() + 0) & 0x3ffffff;
  const std::uint32_t r1 = (load_le32(key.data() + 3) >> 2) & 0x3ffff03;
  const std::uint32_t r2 = (load_le32(key.data() + 6) >> 4) & 0x3ffc0ff;
  const std::uint32_t r3 = (load_le32(key.data() + 9) >> 6) & 0x3f03fff;
  const std::uint32_t r4 = (load_le32(key.data() + 12) >> 8) & 0x00fffff;

  const std::uint32_t s1 = r1 * 5;
  const std::uint32_t s2 = r2 * 5;
  const std::uint32_t s3 = r3 * 5;
  const std::uint32_t s4 = r4 * 5;

  std::uint32_t h0 = 0, h1 = 0, h2 = 0, h3 = 0, h4 = 0;

  std::size_t pos = 0;
  while (pos < data.size()) {
    std::array<std::uint8_t, 16> block{};
    const std::size_t take = std::min<std::size_t>(16, data.size() - pos);
    std::memcpy(block.data(), data.data() + pos, take);
    std::uint32_t hibit = 1u << 24;
    if (take < 16) {
      block[take] = 1;
      hibit = 0;
    }
    pos += take;

    h0 += load_le32(block.data() + 0) & 0x3ffffff;
    h1 += (load_le32(block.data() + 3) >> 2) & 0x3ffffff;
    h2 += (load_le32(block.data() + 6) >> 4) & 0x3ffffff;
    h3 += (load_le32(block.data() + 9) >> 6) & 0x3ffffff;
    h4 += (load_le32(block.data() + 12) >> 8) | hibit;

    const std::uint64_t d0 =
        static_cast<std::uint64_t>(h0) * r0 + static_cast<std::uint64_t>(h1) * s4 +
        static_cast<std::uint64_t>(h2) * s3 + static_cast<std::uint64_t>(h3) * s2 +
        static_cast<std::uint64_t>(h4) * s1;
    std::uint64_t d1 =
        static_cast<std::uint64_t>(h0) * r1 + static_cast<std::uint64_t>(h1) * r0 +
        static_cast<std::uint64_t>(h2) * s4 + static_cast<std::uint64_t>(h3) * s3 +
        static_cast<std::uint64_t>(h4) * s2;
    std::uint64_t d2 =
        static_cast<std::uint64_t>(h0) * r2 + static_cast<std::uint64_t>(h1) * r1 +
        static_cast<std::uint64_t>(h2) * r0 + static_cast<std::uint64_t>(h3) * s4 +
        static_cast<std::uint64_t>(h4) * s3;
    std::uint64_t d3 =
        static_cast<std::uint64_t>(h0) * r3 + static_cast<std::uint64_t>(h1) * r2 +
        static_cast<std::uint64_t>(h2) * r1 + static_cast<std::uint64_t>(h3) * r0 +
        static_cast<std::uint64_t>(h4) * s4;
    std::uint64_t d4 =
        static_cast<std::uint64_t>(h0) * r4 + static_cast<std::uint64_t>(h1) * r3 +
        static_cast<std::uint64_t>(h2) * r2 + static_cast<std::uint64_t>(h3) * r1 +
        static_cast<std::uint64_t>(h4) * r0;

    std::uint64_t c = d0 >> 26;
    h0 = static_cast<std::uint32_t>(d0) & 0x3ffffff;
    d1 += c;
    c = d1 >> 26;
    h1 = static_cast<std::uint32_t>(d1) & 0x3ffffff;
    d2 += c;
    c = d2 >> 26;
    h2 = static_cast<std::uint32_t>(d2) & 0x3ffffff;
    d3 += c;
    c = d3 >> 26;
    h3 = static_cast<std::uint32_t>(d3) & 0x3ffffff;
    d4 += c;
    c = d4 >> 26;
    h4 = static_cast<std::uint32_t>(d4) & 0x3ffffff;
    h0 += static_cast<std::uint32_t>(c) * 5;
    c = h0 >> 26;
    h0 &= 0x3ffffff;
    h1 += static_cast<std::uint32_t>(c);
  }

  // Full carry propagation.
  std::uint32_t c = h1 >> 26;
  h1 &= 0x3ffffff;
  h2 += c;
  c = h2 >> 26;
  h2 &= 0x3ffffff;
  h3 += c;
  c = h3 >> 26;
  h3 &= 0x3ffffff;
  h4 += c;
  c = h4 >> 26;
  h4 &= 0x3ffffff;
  h0 += c * 5;
  c = h0 >> 26;
  h0 &= 0x3ffffff;
  h1 += c;

  // Compute h + -p and select.
  std::uint32_t g0 = h0 + 5;
  c = g0 >> 26;
  g0 &= 0x3ffffff;
  std::uint32_t g1 = h1 + c;
  c = g1 >> 26;
  g1 &= 0x3ffffff;
  std::uint32_t g2 = h2 + c;
  c = g2 >> 26;
  g2 &= 0x3ffffff;
  std::uint32_t g3 = h3 + c;
  c = g3 >> 26;
  g3 &= 0x3ffffff;
  std::uint32_t g4 = h4 + c - (1u << 26);

  std::uint32_t mask = (g4 >> 31) - 1;  // all-ones if g4 >= 0 (h >= p)
  g0 &= mask;
  g1 &= mask;
  g2 &= mask;
  g3 &= mask;
  g4 &= mask;
  mask = ~mask;
  h0 = (h0 & mask) | g0;
  h1 = (h1 & mask) | g1;
  h2 = (h2 & mask) | g2;
  h3 = (h3 & mask) | g3;
  h4 = (h4 & mask) | g4;

  // h %= 2^128, serialize and add s.
  h0 = (h0 | (h1 << 26)) & 0xffffffff;
  h1 = ((h1 >> 6) | (h2 << 20)) & 0xffffffff;
  h2 = ((h2 >> 12) | (h3 << 14)) & 0xffffffff;
  h3 = ((h3 >> 18) | (h4 << 8)) & 0xffffffff;

  std::uint64_t f = static_cast<std::uint64_t>(h0) + load_le32(key.data() + 16);
  h0 = static_cast<std::uint32_t>(f);
  f = static_cast<std::uint64_t>(h1) + load_le32(key.data() + 20) + (f >> 32);
  h1 = static_cast<std::uint32_t>(f);
  f = static_cast<std::uint64_t>(h2) + load_le32(key.data() + 24) + (f >> 32);
  h2 = static_cast<std::uint32_t>(f);
  f = static_cast<std::uint64_t>(h3) + load_le32(key.data() + 28) + (f >> 32);
  h3 = static_cast<std::uint32_t>(f);

  Tag16 tag;
  store_le32(tag.data() + 0, h0);
  store_le32(tag.data() + 4, h1);
  store_le32(tag.data() + 8, h2);
  store_le32(tag.data() + 12, h3);
  return tag;
}

namespace {

[[nodiscard]] Tag16 aead_tag(const Key32& key, const Nonce12& nonce,
                             ByteView aad, ByteView ciphertext) {
  // One-time Poly1305 key = first 32 bytes of block 0.
  std::array<std::uint8_t, 64> block0{};
  chacha20_xor(key, nonce, 0, ByteView{block0.data(), block0.size()},
               block0.data());
  Key32 otk;
  std::memcpy(otk.data(), block0.data(), otk.size());

  Bytes mac_data;
  mac_data.reserve(aad.size() + ciphertext.size() + 32);
  append(mac_data, aad);
  mac_data.resize((mac_data.size() + 15) / 16 * 16, 0);
  append(mac_data, ciphertext);
  mac_data.resize((mac_data.size() + 15) / 16 * 16, 0);
  for (int i = 0; i < 8; ++i) {
    mac_data.push_back(
        static_cast<std::uint8_t>(static_cast<std::uint64_t>(aad.size()) >>
                                  (8 * i)));
  }
  for (int i = 0; i < 8; ++i) {
    mac_data.push_back(static_cast<std::uint8_t>(
        static_cast<std::uint64_t>(ciphertext.size()) >> (8 * i)));
  }
  return poly1305(otk, ByteView{mac_data.data(), mac_data.size()});
}

}  // namespace

Bytes aead_seal(const Key32& key, const Nonce12& nonce, ByteView aad,
                ByteView plaintext) {
  Bytes out(plaintext.size() + 16);
  chacha20_xor(key, nonce, 1, plaintext, out.data());
  const Tag16 tag =
      aead_tag(key, nonce, aad, ByteView{out.data(), plaintext.size()});
  std::memcpy(out.data() + plaintext.size(), tag.data(), tag.size());
  return out;
}

std::optional<Bytes> aead_open(const Key32& key, const Nonce12& nonce,
                               ByteView aad, ByteView sealed) {
  if (sealed.size() < 16) return std::nullopt;
  const ByteView ciphertext = sealed.subspan(0, sealed.size() - 16);
  const ByteView tag = sealed.subspan(sealed.size() - 16);
  const Tag16 expected = aead_tag(key, nonce, aad, ciphertext);
  if (!ct_equal(ByteView{expected.data(), expected.size()}, tag)) {
    return std::nullopt;
  }
  Bytes plaintext(ciphertext.size());
  chacha20_xor(key, nonce, 1, ciphertext, plaintext.data());
  return plaintext;
}

Nonce12 make_nonce(std::uint32_t channel, std::uint64_t seq) noexcept {
  Nonce12 nonce{};
  for (int i = 0; i < 8; ++i) {
    nonce[i] = static_cast<std::uint8_t>(seq >> (8 * i));
  }
  for (int i = 0; i < 4; ++i) {
    nonce[8 + i] = static_cast<std::uint8_t>(channel >> (8 * i));
  }
  return nonce;
}

}  // namespace sbft::crypto
