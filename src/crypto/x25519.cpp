#include "crypto/x25519.hpp"

#include "crypto/curve25519_internal.hpp"

namespace sbft::crypto {

namespace {
constexpr std::int64_t k121665_lo = 0xDB41;
}

Key32 x25519(const Key32& scalar, const Key32& point) noexcept {
  using namespace fe;

  std::array<std::uint8_t, 32> z = scalar;
  z[31] = (scalar[31] & 127) | 64;
  z[0] &= 248;

  Gf x, a, b, c, d, e, f, c121665;
  c121665 = kZero;
  c121665[0] = k121665_lo;
  c121665[1] = 1;

  unpack(x, point.data());
  b = x;
  a = kZero;
  c = kZero;
  d = kZero;
  a[0] = 1;
  d[0] = 1;

  for (int i = 254; i >= 0; --i) {
    const int bit = (z[i >> 3] >> (i & 7)) & 1;
    cswap(a, b, bit);
    cswap(c, d, bit);
    add(e, a, c);
    sub(a, a, c);
    add(c, b, d);
    sub(b, b, d);
    sq(d, e);
    sq(f, a);
    mul(a, c, a);
    mul(c, b, e);
    add(e, a, c);
    sub(a, a, c);
    sq(b, a);
    sub(c, d, f);
    mul(a, c, c121665);
    add(a, a, d);
    mul(c, c, a);
    mul(a, d, f);
    mul(d, b, x);
    sq(b, e);
    cswap(a, b, bit);
    cswap(c, d, bit);
  }

  Gf c_inv, out;
  invert(c_inv, c);
  mul(out, a, c_inv);

  Key32 result;
  pack(result.data(), out);
  return result;
}

Key32 x25519_base(const Key32& scalar) noexcept {
  Key32 base{};
  base[0] = 9;
  return x25519(scalar, base);
}

Key32 x25519_keygen(Rng& rng) {
  Key32 key;
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_u64());
  return key;
}

}  // namespace sbft::crypto
