#include "tee/protected_fs.hpp"

namespace sbft::tee {

namespace {
constexpr std::uint32_t kFsChannel = 0xf5;
}

void MemoryBlockStore::append(ByteView ciphertext) {
  blocks_.emplace_back(ciphertext.begin(), ciphertext.end());
}

std::optional<Bytes> MemoryBlockStore::read(std::uint64_t index) const {
  if (index >= blocks_.size()) return std::nullopt;
  return blocks_[index];
}

std::uint64_t MemoryBlockStore::size() const { return blocks_.size(); }

void MemoryBlockStore::corrupt(std::uint64_t index, std::size_t byte_offset) {
  if (index < blocks_.size() && byte_offset < blocks_[index].size()) {
    blocks_[index][byte_offset] ^= 0x01;
  }
}

void MemoryBlockStore::truncate(std::uint64_t new_size) {
  if (new_size < blocks_.size()) blocks_.resize(new_size);
}

ProtectedFile::ProtectedFile(crypto::Key32 key, BlockStore& store)
    : key_(key), store_(store) {}

std::uint64_t ProtectedFile::append(ByteView record) {
  const std::uint64_t index = count_;
  const Bytes sealed = crypto::aead_seal(
      key_, crypto::make_nonce(kFsChannel, index), chain_tag_, record);
  // The chain tag is the AEAD tag (last 16 bytes) of this record.
  chain_tag_.assign(sealed.end() - 16, sealed.end());
  store_.append(sealed);
  count_ += 1;
  return index;
}

std::optional<std::vector<Bytes>> ProtectedFile::read_all() const {
  std::vector<Bytes> records;
  Bytes prev_tag;
  if (store_.size() < count_) return std::nullopt;  // truncation
  for (std::uint64_t i = 0; i < count_; ++i) {
    const auto sealed = store_.read(i);
    if (!sealed) return std::nullopt;
    auto plain = crypto::aead_open(key_, crypto::make_nonce(kFsChannel, i),
                                   prev_tag, *sealed);
    if (!plain) return std::nullopt;  // tamper / reorder detected
    prev_tag.assign(sealed->end() - 16, sealed->end());
    records.push_back(std::move(*plain));
  }
  return records;
}

}  // namespace sbft::tee
