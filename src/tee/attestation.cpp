#include "tee/attestation.hpp"

#include "common/serde.hpp"

namespace sbft::tee {

namespace {

[[nodiscard]] Bytes quote_signing_input(const Digest& measurement,
                                        ByteView report_data) {
  Writer w;
  w.raw(measurement.view());
  w.bytes(report_data);
  return std::move(w).take();
}

}  // namespace

Bytes Quote::serialize() const {
  Writer w;
  w.raw(measurement.view());
  w.bytes(report_data);
  w.raw(signature.view());
  return std::move(w).take();
}

std::optional<Quote> Quote::deserialize(ByteView data) {
  Reader r(data);
  Quote q;
  const Bytes m = r.raw(32);
  q.report_data = r.bytes();
  const Bytes sig = r.raw(64);
  if (!r.done()) return std::nullopt;
  std::copy(m.begin(), m.end(), q.measurement.bytes.begin());
  std::copy(sig.begin(), sig.end(), q.signature.bytes.begin());
  return q;
}

AttestationService::AttestationService(std::uint64_t seed)
    : root_key_([seed] {
        Rng rng(seed ^ 0xa77e57a7107a57edULL);
        return crypto::Ed25519SecretKey::generate(rng);
      }()),
      root_public_(root_key_.public_key()) {}

Quote AttestationService::issue(const Digest& measurement,
                                ByteView report_data) const {
  Quote q;
  q.measurement = measurement;
  q.report_data = Bytes(report_data.begin(), report_data.end());
  const Bytes input = quote_signing_input(measurement, report_data);
  q.signature = root_key_.sign(input);
  return q;
}

bool verify_quote(const crypto::Ed25519PublicKey& root, const Quote& quote) {
  const Bytes input =
      quote_signing_input(quote.measurement, quote.report_data);
  return crypto::ed25519_verify(root, input, quote.signature);
}

bool verify_quote(const crypto::Ed25519PublicKey& root, const Quote& quote,
                  const Digest& expected_measurement) {
  if (quote.measurement != expected_measurement) return false;
  return verify_quote(root, quote);
}

}  // namespace sbft::tee
