// Protected filesystem (sgx_tprotected_fs equivalent).
//
// The blockchain application persists blocks through this layer: the
// enclave encrypts + MAC-chains each record, then hands the ciphertext to
// UNTRUSTED storage via an ocall. On read-back, tampering, reordering,
// replacement and truncation are all detected. The paper's ledger use case
// pays one such ocall per 5-transaction block — the cost that makes the
// blockchain app slower than the KVS in Figures 3a/3b.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/aead.hpp"

namespace sbft::tee {

/// Untrusted block storage (the environment side of the ocall).
class BlockStore {
 public:
  virtual ~BlockStore() = default;
  virtual void append(ByteView ciphertext) = 0;
  [[nodiscard]] virtual std::optional<Bytes> read(std::uint64_t index)
      const = 0;
  [[nodiscard]] virtual std::uint64_t size() const = 0;

  /// FAULT INJECTION ONLY: lets adversarial tests tamper with stored data.
  virtual void corrupt(std::uint64_t index, std::size_t byte_offset) = 0;
  virtual void truncate(std::uint64_t new_size) = 0;
};

/// In-memory untrusted store (tests, benchmarks).
class MemoryBlockStore final : public BlockStore {
 public:
  void append(ByteView ciphertext) override;
  [[nodiscard]] std::optional<Bytes> read(std::uint64_t index) const override;
  [[nodiscard]] std::uint64_t size() const override;
  void corrupt(std::uint64_t index, std::size_t byte_offset) override;
  void truncate(std::uint64_t new_size) override;

 private:
  std::vector<Bytes> blocks_;
};

/// Enclave-side writer: encrypts records and chains MACs so the untrusted
/// store cannot reorder or splice. The chain tag of record i is fed as AAD
/// into record i+1.
class ProtectedFile {
 public:
  ProtectedFile(crypto::Key32 key, BlockStore& store);

  /// Encrypts and appends one record. Returns the record index.
  std::uint64_t append(ByteView record);

  /// Decrypts and verifies record `index` given sequential reading.
  /// Use `read_all` for chain-verified access.
  [[nodiscard]] std::optional<std::vector<Bytes>> read_all() const;

  [[nodiscard]] std::uint64_t record_count() const noexcept { return count_; }

 private:
  crypto::Key32 key_;
  BlockStore& store_;
  std::uint64_t count_{0};
  Bytes chain_tag_;  // running MAC chain (last record's tag)
};

}  // namespace sbft::tee
