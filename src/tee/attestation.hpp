// Simulated remote attestation.
//
// Stands in for Intel's attestation infrastructure (IAS/DCAP): a platform
// "quoting enclave" signs (measurement, report_data) with a root key whose
// public half all verifiers know. SplitBFT clients attest the Preparation
// and Execution enclaves before provisioning session keys (paper §4 step 1).
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "crypto/ed25519.hpp"

namespace sbft::tee {

struct Quote {
  Digest measurement;
  Bytes report_data;  // enclave-chosen binding, e.g. its public keys
  crypto::Ed25519Signature signature;

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<Quote> deserialize(ByteView data);
};

class AttestationService {
 public:
  explicit AttestationService(std::uint64_t seed);

  /// Issues a quote binding `report_data` to the enclave identity.
  [[nodiscard]] Quote issue(const Digest& measurement,
                            ByteView report_data) const;

  [[nodiscard]] const crypto::Ed25519PublicKey& root_public_key()
      const noexcept {
    return root_public_;
  }

 private:
  crypto::Ed25519SecretKey root_key_;
  crypto::Ed25519PublicKey root_public_;
};

/// Verifies a quote chain and (optionally) the expected code identity.
[[nodiscard]] bool verify_quote(const crypto::Ed25519PublicKey& root,
                                const Quote& quote);
[[nodiscard]] bool verify_quote(const crypto::Ed25519PublicKey& root,
                                const Quote& quote,
                                const Digest& expected_measurement);

}  // namespace sbft::tee
