// Enclave sealing (SGX sgx_seal_data equivalent).
//
// A platform-wide sealing root plus the enclave measurement derive a
// per-identity sealing key (MRENCLAVE policy): only the same enclave code on
// the same platform can unseal. Used for enclave recovery (paper §4
// "Enclave recovery") and the protected filesystem.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "crypto/aead.hpp"

namespace sbft::tee {

class SealingService {
 public:
  /// One service per simulated platform (CPU).
  explicit SealingService(std::uint64_t platform_seed);

  /// Derives the sealing key for an enclave identity.
  [[nodiscard]] crypto::Key32 sealing_key(const Digest& measurement) const;

 private:
  crypto::Key32 platform_root_{};
};

/// Seals `plaintext` under `key`; `seq` must be unique per key
/// (e.g. a persisted monotonic counter) to keep nonces fresh.
[[nodiscard]] Bytes seal_data(const crypto::Key32& key, std::uint64_t seq,
                              ByteView aad, ByteView plaintext);

/// Reverses seal_data; nullopt on tamper or wrong key/seq/aad.
[[nodiscard]] std::optional<Bytes> unseal_data(const crypto::Key32& key,
                                               std::uint64_t seq, ByteView aad,
                                               ByteView sealed);

}  // namespace sbft::tee
