// The enclave abstraction.
//
// An Enclave is code+state reachable only through its single serialized
// entry point (ecall). Everything crossing the boundary is a byte buffer,
// exactly as with the SGX SDK's edger8r interface: the host cannot see
// enclave memory, and the enclave never trusts pointers from outside.
//
// Enclaves reach back into the untrusted world through an OcallSink
// (network sends, persistent writes, timer registration). Ocalls are
// fire-and-forget or return bytes; the enclave must treat every ocall
// result as untrusted input.
#pragma once

#include <cstdint>
#include <memory>

#include "common/bytes.hpp"

namespace sbft::tee {

/// Well-known ecall function ids shared by all compartment enclaves.
enum class EcallFn : std::uint32_t {
  /// Deliver one protocol message (args: serialized envelope).
  DeliverMessage = 1,
  /// Timer/tick event from the untrusted environment (args: u64 now_us).
  Tick = 2,
  /// Administrative query used by tests (enclave-defined semantics).
  Inspect = 3,
  /// Initialization payload (configuration, keys provisioning).
  Init = 4,
};

/// Untrusted services the enclave may invoke.
class OcallSink {
 public:
  virtual ~OcallSink() = default;
  /// Generic ocall: function id + serialized args, returns serialized result.
  virtual Bytes ocall(std::uint32_t fn, ByteView args) = 0;
};

/// Well-known ocall function ids.
enum class OcallFn : std::uint32_t {
  /// Append an encrypted block to untrusted persistent storage.
  PersistBlock = 1,
  /// Read an encrypted block back (args: u64 index).
  ReadBlock = 2,
};

class Enclave {
 public:
  virtual ~Enclave() = default;

  /// Code identity (MRENCLAVE equivalent): digest of the compartment type
  /// and its build configuration.
  [[nodiscard]] virtual Digest measurement() const = 0;

  /// Serialized entry point. Implementations must not retain references
  /// into `args` beyond the call.
  [[nodiscard]] virtual Bytes ecall(std::uint32_t fn, ByteView args) = 0;
};

}  // namespace sbft::tee
