#include "tee/monotonic_counter.hpp"

namespace sbft::tee {

std::uint64_t MonotonicCounterService::increment(std::uint64_t id) {
  const std::scoped_lock lock(mutex_);
  return ++counters_[id];
}

std::uint64_t MonotonicCounterService::read(std::uint64_t id) const {
  const std::scoped_lock lock(mutex_);
  const auto it = counters_.find(id);
  return it == counters_.end() ? 0 : it->second;
}

void MonotonicCounterService::corrupt_set(std::uint64_t id,
                                          std::uint64_t value) {
  const std::scoped_lock lock(mutex_);
  counters_[id] = value;
}

}  // namespace sbft::tee
