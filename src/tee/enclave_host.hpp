// EnclaveHost: the untrusted side's handle to a loaded enclave.
//
// Responsibilities:
//  * serializes entry (SplitBFT runs a single thread per enclave; the SGX
//    SDK equivalent is an exclusive TCS) — a mutex guards the ecall path;
//  * charges the CostModel for every crossing, either by busy-waiting
//    (threaded runtime, real time) or by pure accounting (virtual time);
//  * records per-function-id latency statistics; the Figure-4 experiment
//    reads these to report mean ecall time per compartment.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>

#include "common/clock.hpp"
#include "tee/cost_model.hpp"
#include "tee/enclave.hpp"

namespace sbft::tee {

struct EcallStats {
  std::uint64_t calls{0};
  std::uint64_t total_us{0};
  std::uint64_t bytes_in{0};
  std::uint64_t bytes_out{0};

  [[nodiscard]] double mean_us() const noexcept {
    return calls == 0 ? 0.0
                      : static_cast<double>(total_us) /
                            static_cast<double>(calls);
  }
};

class EnclaveHost {
 public:
  /// `charge_real_time`: if true, the crossing cost is burned as actual
  /// wall-clock spin (threaded runtime); if false it is only recorded
  /// (virtual-time benchmarks charge it through the queueing model).
  EnclaveHost(std::unique_ptr<Enclave> enclave, CostModel cost,
              bool charge_real_time);

  /// Invokes the enclave entry point, charging transition costs.
  [[nodiscard]] Bytes ecall(std::uint32_t fn, ByteView args);

  [[nodiscard]] EcallStats stats(std::uint32_t fn) const;
  [[nodiscard]] EcallStats total_stats() const;
  void reset_stats();

  [[nodiscard]] Digest measurement() const { return enclave_->measurement(); }
  [[nodiscard]] const CostModel& cost_model() const noexcept { return cost_; }

  /// Direct access for setup-time calls (Init) in tests.
  [[nodiscard]] Enclave& enclave() noexcept { return *enclave_; }

 private:
  static constexpr std::size_t kMaxFn = 8;

  std::unique_ptr<Enclave> enclave_;
  CostModel cost_;
  bool charge_real_time_;
  mutable std::mutex mutex_;
  std::array<EcallStats, kMaxFn> stats_{};
};

}  // namespace sbft::tee
