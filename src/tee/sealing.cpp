#include "tee/sealing.hpp"

#include "common/rng.hpp"
#include "crypto/hmac.hpp"

namespace sbft::tee {

namespace {
constexpr std::uint32_t kSealChannel = 0x5ea1;
}

SealingService::SealingService(std::uint64_t platform_seed) {
  Rng rng(platform_seed ^ 0x5ea11e55b007c0deULL);
  for (auto& b : platform_root_) {
    b = static_cast<std::uint8_t>(rng.next_u64());
  }
}

crypto::Key32 SealingService::sealing_key(const Digest& measurement) const {
  return crypto::derive_key(
      ByteView{platform_root_.data(), platform_root_.size()}, "sgx-seal-key",
      measurement.view());
}

Bytes seal_data(const crypto::Key32& key, std::uint64_t seq, ByteView aad,
                ByteView plaintext) {
  return crypto::aead_seal(key, crypto::make_nonce(kSealChannel, seq), aad,
                           plaintext);
}

std::optional<Bytes> unseal_data(const crypto::Key32& key, std::uint64_t seq,
                                 ByteView aad, ByteView sealed) {
  return crypto::aead_open(key, crypto::make_nonce(kSealChannel, seq), aad,
                           sealed);
}

}  // namespace sbft::tee
