// Trusted monotonic counters.
//
// Two uses: (i) the hybrid baseline's USIG assigns counter values to
// messages (MinBFT/CheapBFT style), and (ii) rollback detection for sealed
// state. The platform owns the counters; a fault-injection hook lets the
// Table-1 experiment model a compromised TEE that rolls counters back.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>

namespace sbft::tee {

class MonotonicCounterService {
 public:
  MonotonicCounterService() = default;

  /// Atomically increments counter `id` and returns the NEW value.
  [[nodiscard]] std::uint64_t increment(std::uint64_t id);

  /// Reads the current value (0 if never incremented).
  [[nodiscard]] std::uint64_t read(std::uint64_t id) const;

  /// FAULT INJECTION ONLY: models a compromised platform rolling a counter
  /// back (e.g. SGX counter wear-out reset or snapshot restore attack).
  void corrupt_set(std::uint64_t id, std::uint64_t value);

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::uint64_t> counters_;
};

}  // namespace sbft::tee
