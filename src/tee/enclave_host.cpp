#include "tee/enclave_host.hpp"

#include <chrono>

namespace sbft::tee {

namespace {

void spin_for(Micros us) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::microseconds(us);
  // Busy-wait: an SGX transition burns CPU, it does not yield.
  while (std::chrono::steady_clock::now() < deadline) {
  }
}

}  // namespace

EnclaveHost::EnclaveHost(std::unique_ptr<Enclave> enclave, CostModel cost,
                         bool charge_real_time)
    : enclave_(std::move(enclave)),
      cost_(cost),
      charge_real_time_(charge_real_time) {}

Bytes EnclaveHost::ecall(std::uint32_t fn, ByteView args) {
  const std::scoped_lock lock(mutex_);
  const auto start = std::chrono::steady_clock::now();

  Bytes result = enclave_->ecall(fn, args);

  const Micros crossing = cost_.crossing_cost(args.size(), result.size());
  if (charge_real_time_ && crossing > 0) spin_for(crossing);

  const auto end = std::chrono::steady_clock::now();
  Micros elapsed = static_cast<Micros>(
      std::chrono::duration_cast<std::chrono::microseconds>(end - start)
          .count());
  if (!charge_real_time_) elapsed += crossing;

  const std::size_t slot = fn < kMaxFn ? fn : 0;
  EcallStats& s = stats_[slot];
  s.calls += 1;
  s.total_us += elapsed;
  s.bytes_in += args.size();
  s.bytes_out += result.size();
  return result;
}

EcallStats EnclaveHost::stats(std::uint32_t fn) const {
  const std::scoped_lock lock(mutex_);
  return stats_[fn < kMaxFn ? fn : 0];
}

EcallStats EnclaveHost::total_stats() const {
  const std::scoped_lock lock(mutex_);
  EcallStats total;
  for (const auto& s : stats_) {
    total.calls += s.calls;
    total.total_us += s.total_us;
    total.bytes_in += s.bytes_in;
    total.bytes_out += s.bytes_out;
  }
  return total;
}

void EnclaveHost::reset_stats() {
  const std::scoped_lock lock(mutex_);
  stats_ = {};
}

}  // namespace sbft::tee
