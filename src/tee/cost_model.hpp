// SGX overhead model.
//
// We have no SGX hardware, so the costs the paper measures on real enclaves
// are charged explicitly: a fixed transition cost per ecall/ocall
// (~8,640 cycles, Weisse et al. [61], ≈2.3 µs at the paper's 3.7 GHz) and a
// copy cost for moving argument/result buffers across the EPC boundary.
// `simulation_mode` reproduces the paper's "SplitBFT KVS Simulation" line:
// the SDK runs the same code without hardware transitions.
#pragma once

#include <cstdint>

#include "common/clock.hpp"

namespace sbft::tee {

struct CostModel {
  /// When true, transitions and EPC copies are free (SGX simulation mode).
  bool simulation_mode{false};

  /// One-way world-switch cost, charged twice per ecall (entry + exit).
  /// The raw transition is ~8,640 cycles (~2.3 µs at 3.7 GHz); the
  /// effective cost including TLB flushes and cache pollution is higher
  /// (HotCalls [61] reports the total impact well above the raw switch),
  /// so the default models 4 µs each way.
  double transition_us{4.0};

  /// Cost of copying a buffer across the enclave boundary, per KiB.
  double copy_us_per_kib{0.8};

  /// Fixed marshalling overhead per crossing (serde of the call frame).
  double marshal_us{0.4};

  /// Cost charged for one ecall or ocall moving `bytes_in` + `bytes_out`
  /// across the boundary.
  [[nodiscard]] Micros crossing_cost(std::size_t bytes_in,
                                     std::size_t bytes_out) const noexcept {
    if (simulation_mode) return 0;
    const double copied_kib =
        static_cast<double>(bytes_in + bytes_out) / 1024.0;
    const double us =
        2.0 * transition_us + marshal_us + copied_kib * copy_us_per_kib;
    return static_cast<Micros>(us);
  }

  [[nodiscard]] static CostModel sgx() noexcept { return CostModel{}; }

  [[nodiscard]] static CostModel simulation() noexcept {
    CostModel m;
    m.simulation_mode = true;
    return m;
  }
};

}  // namespace sbft::tee
