// Transport interface: protocol engines and brokers only know `send`.
#pragma once

#include <functional>

#include "net/message.hpp"

namespace sbft::net {

using DeliveryFn = std::function<void(Envelope)>;

class Transport {
 public:
  virtual ~Transport() = default;

  /// Queues `env` for delivery to `env.dst`. Never blocks on the receiver.
  virtual void send(Envelope env) = 0;

  /// Registers the handler invoked when a message for `id` arrives.
  virtual void register_endpoint(principal::Id id, DeliveryFn handler) = 0;
};

}  // namespace sbft::net
