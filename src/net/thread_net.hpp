// In-process loopback transport for the threaded runtime.
//
// Each endpoint owns an MPSC queue drained by a dedicated consumer thread —
// the moral equivalent of one TCP connection handler per peer. Used by the
// runnable examples; correctness tests use the deterministic simulator.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "net/transport.hpp"

namespace sbft::net {

class ThreadNetwork final : public Transport {
 public:
  ThreadNetwork() = default;
  ~ThreadNetwork() override;
  ThreadNetwork(const ThreadNetwork&) = delete;
  ThreadNetwork& operator=(const ThreadNetwork&) = delete;

  void send(Envelope env) override;
  void register_endpoint(principal::Id id, DeliveryFn handler) override;

  /// Stops all consumer threads; messages still queued are dropped
  /// (the network is allowed to be unreliable).
  void shutdown();

  /// Blocks until every queue is momentarily empty (test helper; this is
  /// not a barrier — new sends may arrive right after).
  void drain();

 private:
  struct Endpoint {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Envelope> queue;
    bool stopping{false};
    bool busy{false};
    DeliveryFn handler;
    std::thread consumer;
  };

  std::mutex registry_mutex_;
  std::unordered_map<principal::Id, std::unique_ptr<Endpoint>> endpoints_;
  bool shut_down_{false};
};

}  // namespace sbft::net
