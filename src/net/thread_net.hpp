// In-process loopback transport for the threaded runtime.
//
// Each endpoint owns an MPSC queue drained by a dedicated consumer thread —
// the moral equivalent of one TCP connection handler per peer. The consumer
// drains the whole queue per wakeup, and an optional ingress-authentication
// stage hands each drained batch to a VerifierPool so signature checks run
// in parallel (and populate a shared VerifyCache) before delivery. Used by
// the runnable examples; correctness tests use the deterministic simulator.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>

#include "net/auth.hpp"
#include "net/transport.hpp"

namespace sbft::net {

class ThreadNetwork final : public Transport {
 public:
  /// Maps an inbound envelope to the principal whose signature it must
  /// carry; nullopt means "not signature-authenticated here" (client HMACs,
  /// local messages) and the envelope is delivered unfiltered — the
  /// handler's own checks still apply.
  using AuthPolicy = std::function<std::optional<principal::Id>(
      const Envelope&)>;

  ThreadNetwork() = default;
  ~ThreadNetwork() override;
  ThreadNetwork(const ThreadNetwork&) = delete;
  ThreadNetwork& operator=(const ThreadNetwork&) = delete;

  void send(Envelope env) override;
  void register_endpoint(principal::Id id, DeliveryFn handler) override;

  /// Enables batched ingress signature verification. Envelopes the policy
  /// maps to a signer are verified through `pool` (parallel across its
  /// workers, deduplicated by its VerifyCache); failures are dropped before
  /// delivery. Must be called before the endpoints it should cover are
  /// registered.
  void enable_ingress_auth(std::shared_ptr<VerifierPool> pool,
                           AuthPolicy policy);

  /// Stops all consumer threads; messages still queued are dropped
  /// (the network is allowed to be unreliable).
  void shutdown();

  /// Blocks until every queue is momentarily empty AND no handler is
  /// mid-delivery (this is not a barrier — new sends may arrive right
  /// after). The handshake with the consumer: the consumer swaps the queue
  /// out and raises `busy` under the SAME lock, so drain() can never
  /// observe "queue empty, consumer idle" while a drained batch is still
  /// being delivered; `busy` drops (again under the lock) only after the
  /// whole batch was handed to the handler. A concurrent shutdown() raises
  /// `stopping` (never cleared by drain or the consumer), which both the
  /// consumer and drain() treat as a terminal wake-up condition, so
  /// drain + send + shutdown cannot deadlock.
  void drain();

 private:
  struct Endpoint {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Envelope> queue;
    bool stopping{false};
    bool busy{false};  // a drained batch is being verified/delivered
    DeliveryFn handler;
    std::shared_ptr<VerifierPool> auth_pool;  // null = no ingress auth
    AuthPolicy auth_policy;
    std::thread consumer;
  };

  /// Verifies (if configured) and delivers one drained batch, in order.
  /// Takes the batch by rvalue reference: the consumer swaps the queue out
  /// and hands it straight down — envelopes are moved, never re-copied.
  static void deliver_batch(Endpoint& ep, std::deque<Envelope>&& batch);

  std::mutex registry_mutex_;
  std::unordered_map<principal::Id, std::unique_ptr<Endpoint>> endpoints_;
  std::shared_ptr<VerifierPool> auth_pool_;
  AuthPolicy auth_policy_;
  bool shut_down_{false};
};

}  // namespace sbft::net
