// In-process loopback transport for the threaded runtime.
//
// Each endpoint owns an MPSC queue drained by a dedicated consumer thread —
// the moral equivalent of one TCP connection handler per peer. The consumer
// drains the whole queue per wakeup, and an optional ingress-authentication
// stage hands each drained batch to a VerifierPool so signature checks run
// in parallel (and populate a shared VerifyCache) before delivery. Used by
// the runnable examples; correctness tests use the deterministic simulator.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/auth.hpp"
#include "net/transport.hpp"

namespace sbft::net {

class ThreadNetwork final : public Transport {
 public:
  /// Maps an inbound envelope to the principal whose signature it must
  /// carry; nullopt means "not signature-authenticated here" (client HMACs,
  /// local messages) and the envelope is delivered unfiltered — the
  /// handler's own checks still apply.
  using AuthPolicy = std::function<std::optional<principal::Id>(
      const Envelope&)>;

  ThreadNetwork() = default;
  ~ThreadNetwork() override;
  ThreadNetwork(const ThreadNetwork&) = delete;
  ThreadNetwork& operator=(const ThreadNetwork&) = delete;

  void send(Envelope env) override;
  /// Registers (or, for an id already registered, REPLACES) the endpoint.
  /// Replacement stops and joins the previous consumer; envelopes still
  /// queued on it are dropped (the network is allowed to be unreliable).
  /// After shutdown() this is a no-op — no consumer may outlive the sweep.
  void register_endpoint(principal::Id id, DeliveryFn handler) override;

  /// Registers ONE queue + consumer thread serving several principal ids
  /// (delivery order is the arrival order across the whole group). This is
  /// the scale path: a workload station multiplexing thousands of client
  /// principals, or a SplitBFT replica's four principals whose underlying
  /// broker is one serial object anyway — a thread per principal would
  /// melt the host at those counts. Same replacement and post-shutdown
  /// semantics as register_endpoint.
  void register_endpoint_group(const std::vector<principal::Id>& ids,
                               DeliveryFn handler);

  /// Enables batched ingress signature verification. Envelopes the policy
  /// maps to a signer are verified through `pool` (parallel across its
  /// workers, deduplicated by its VerifyCache); failures are dropped before
  /// delivery. Must be called before the endpoints it should cover are
  /// registered.
  void enable_ingress_auth(std::shared_ptr<VerifierPool> pool,
                           AuthPolicy policy);

  /// Stops all consumer threads; messages still queued are dropped
  /// (the network is allowed to be unreliable).
  void shutdown();

  /// Blocks until every queue is momentarily empty AND no handler is
  /// mid-delivery (this is not a barrier — new sends may arrive right
  /// after). The handshake with the consumer: the consumer swaps the queue
  /// out and raises `busy` under the SAME lock, so drain() can never
  /// observe "queue empty, consumer idle" while a drained batch is still
  /// being delivered; `busy` drops (again under the lock) only after the
  /// whole batch was handed to the handler. A concurrent shutdown() raises
  /// `stopping` (never cleared by drain or the consumer), which both the
  /// consumer and drain() treat as a terminal wake-up condition, so
  /// drain + send + shutdown cannot deadlock.
  void drain();

 private:
  struct Endpoint {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Envelope> queue;
    bool stopping{false};
    bool busy{false};  // a drained batch is being verified/delivered
    DeliveryFn handler;
    std::shared_ptr<VerifierPool> auth_pool;  // null = no ingress auth
    AuthPolicy auth_policy;
    std::thread consumer;
  };

  /// Verifies (if configured) and delivers one drained batch, in order.
  /// Takes the batch by rvalue reference: the consumer swaps the queue out
  /// and hands it straight down — envelopes are moved, never re-copied.
  static void deliver_batch(Endpoint& ep, std::deque<Envelope>&& batch);
  /// Raises `stopping`, wakes the consumer and joins it. Idempotent.
  static void stop_endpoint(Endpoint& ep);
  /// Shared implementation of single and group registration.
  void register_endpoints(const std::vector<principal::Id>& ids,
                          DeliveryFn handler);

  std::mutex registry_mutex_;
  // shared_ptr: send() resolves an endpoint under the registry lock but
  // enqueues outside it — the reference keeps the Endpoint alive across a
  // concurrent replacement by register_endpoint().
  std::unordered_map<principal::Id, std::shared_ptr<Endpoint>> endpoints_;
  std::shared_ptr<VerifierPool> auth_pool_;
  AuthPolicy auth_policy_;
  bool shut_down_{false};
};

}  // namespace sbft::net
