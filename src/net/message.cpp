#include "net/message.hpp"

#include "common/serde.hpp"

namespace sbft::net {

Bytes Envelope::serialize() const {
  Writer w;
  w.reserve(8 + 8 + 4 + 4 + payload.size() + 4 + signature.size());
  w.u64(src);
  w.u64(dst);
  w.u32(type);
  w.bytes(payload);
  w.bytes(signature);
  return std::move(w).take();
}

std::optional<Envelope> Envelope::deserialize(ByteView data) {
  Reader r(data);
  Envelope env;
  env.src = r.u64();
  env.dst = r.u64();
  env.type = r.u32();
  env.payload = r.bytes();
  env.signature = r.bytes();
  if (!r.done()) return std::nullopt;
  return env;
}

Bytes signing_input(std::uint32_t type, ByteView payload) {
  Writer w;
  w.reserve(4 + 4 + payload.size());
  w.u32(type);
  w.bytes(payload);
  return std::move(w).take();
}

void sign_envelope(Envelope& env, const crypto::Signer& signer) {
  env.signature = signer.sign(signing_input(env.type, env.payload));
}

bool verify_envelope(const Envelope& env, const crypto::Verifier& verifier,
                     principal::Id claimed_signer) {
  const Bytes input = signing_input(env.type, env.payload);
  return verifier.verify(claimed_signer, input, env.signature);
}

}  // namespace sbft::net
