#include "net/message.hpp"

#include <atomic>

#include "common/serde.hpp"
#include "crypto/sha256.hpp"

namespace sbft::net {

namespace {

std::atomic<std::uint64_t> g_digests_computed{0};
std::atomic<std::uint64_t> g_wire_builds{0};

/// Same view of the same immutable buffer (cheap identity; content-implied
/// because frames never mutate and the memo's keepalive copy pins the
/// buffer against address reuse).
[[nodiscard]] bool same_frame_loc(const SharedBytes& a,
                                  const SharedBytes& b) noexcept {
  return a.data() == b.data() && a.size() == b.size();
}

// Wire layout (all little-endian):
//   [0]  src  u64
//   [8]  dst  u64
//   [16] type u32
//   [20] payload length u32
//   [24] payload
//   [24+n] signature length u32
//   [28+n] signature
// The signing input (type || len || payload) is the contiguous range
// [16, 24+n) — received envelopes alias it instead of rebuilding it.
constexpr std::size_t kHeaderBytes = 16;   // src + dst
constexpr std::size_t kSigningPrefix = 8;  // type + payload length

}  // namespace

std::uint64_t envelope_digests_computed() noexcept {
  return g_digests_computed.load(std::memory_order_relaxed);
}

std::uint64_t envelope_wire_builds() noexcept {
  return g_wire_builds.load(std::memory_order_relaxed);
}

bool Envelope::memo_base_valid() const noexcept {
  return memo_ && memo_->type == type &&
         same_frame_loc(memo_->payload_key, payload);
}

void Envelope::ensure_base_memo() const {
  if (memo_base_valid()) return;
  auto m = std::make_shared<Memo>();
  m->payload_key = payload;
  m->type = type;
  Writer w;
  w.reserve(kSigningPrefix + payload.size());
  w.u32(type);
  w.bytes(payload);
  m->signing = SharedBytes(std::move(w).take());
  memo_ = std::move(m);
}

ByteView Envelope::signing_input_view() const {
  ensure_base_memo();
  return memo_->signing.view();
}

Digest Envelope::digest() const {
  ensure_base_memo();
  const Memo& m = *memo_;
  // Shared across every copy of this message: whichever copy asks first
  // computes, all others reuse.
  std::call_once(m.digest_once, [&m] {
    m.digest = crypto::sha256(m.signing);
    g_digests_computed.fetch_add(1, std::memory_order_relaxed);
  });
  return m.digest;
}

SharedBytes Envelope::wire() const {
  if (memo_base_valid() && !wire_image_.empty() && wire_src_ == src &&
      wire_dst_ == dst && same_frame_loc(wire_signature_key_, signature)) {
    return wire_image_;
  }
  ensure_base_memo();
  Writer w;
  w.reserve(kHeaderBytes + memo_->signing.size() + 4 + signature.size());
  w.u64(src);
  w.u64(dst);
  w.raw(memo_->signing);
  w.bytes(signature);
  wire_image_ = SharedBytes(std::move(w).take());
  wire_src_ = src;
  wire_dst_ = dst;
  wire_signature_key_ = signature;
  g_wire_builds.fetch_add(1, std::memory_order_relaxed);
  return wire_image_;
}

std::optional<Envelope> Envelope::from_frame(SharedBytes frame) {
  Reader r(frame.view());
  Envelope env;
  env.src = r.u64();
  env.dst = r.u64();
  env.type = r.u32();
  const std::uint32_t payload_len = r.u32();
  const std::size_t payload_off = r.position();
  r.skip(payload_len);
  const std::uint32_t sig_len = r.u32();
  const std::size_t sig_off = r.position();
  r.skip(sig_len);
  if (!r.done()) return std::nullopt;

  env.payload = frame.slice(payload_off, payload_len);
  env.signature = frame.slice(sig_off, sig_len);

  // Seed the caches: the received frame IS the wire image, and the signing
  // input aliases it — relaying or verifying this envelope allocates
  // nothing further.
  auto m = std::make_shared<Memo>();
  m->payload_key = env.payload;
  m->type = env.type;
  m->signing = frame.slice(kHeaderBytes, kSigningPrefix + payload_len);
  env.memo_ = std::move(m);
  env.wire_src_ = env.src;
  env.wire_dst_ = env.dst;
  env.wire_signature_key_ = env.signature;
  env.wire_image_ = std::move(frame);
  return env;
}

std::optional<Envelope> Envelope::deserialize(ByteView data) {
  return from_frame(SharedBytes::copy_of(data));
}

Bytes signing_input(std::uint32_t type, ByteView payload) {
  Writer w;
  w.reserve(kSigningPrefix + payload.size());
  w.u32(type);
  w.bytes(payload);
  return std::move(w).take();
}

void sign_envelope(Envelope& env, const crypto::Signer& signer) {
  env.signature = SharedBytes(signer.sign(env.signing_input_view()));
}

bool verify_envelope(const Envelope& env, const crypto::Verifier& verifier,
                     principal::Id claimed_signer) {
  return verifier.verify(claimed_signer, env.signing_input_view(),
                         env.signature);
}

}  // namespace sbft::net
