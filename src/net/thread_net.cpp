#include "net/thread_net.hpp"

#include <vector>

namespace sbft::net {

ThreadNetwork::~ThreadNetwork() { shutdown(); }

void ThreadNetwork::enable_ingress_auth(std::shared_ptr<VerifierPool> pool,
                                        AuthPolicy policy) {
  const std::scoped_lock lock(registry_mutex_);
  auth_pool_ = std::move(pool);
  auth_policy_ = std::move(policy);
}

void ThreadNetwork::deliver_batch(Endpoint& ep, std::deque<Envelope>&& batch) {
  if (!ep.auth_pool || !ep.auth_policy) {
    for (auto& env : batch) ep.handler(std::move(env));
    return;
  }
  // Move the signature-authenticated subset into one parallel batch, then
  // deliver survivors in arrival order (verified envelopes come back from
  // the pool; unauthenticated ones are delivered from the original batch).
  // Reserve up front: worst case every envelope is a job, and a frame-backed
  // envelope move is pointer-width — the reserve is the only allocation.
  std::vector<VerifierPool::Job> jobs;
  jobs.reserve(batch.size());
  std::vector<std::size_t> job_index(batch.size(), SIZE_MAX);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (const auto signer = ep.auth_policy(batch[i])) {
      job_index[i] = jobs.size();
      jobs.push_back({std::move(batch[i]), *signer});
    }
  }
  auto results = ep.auth_pool->verify_batch(std::move(jobs));
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (job_index[i] == SIZE_MAX) {
      ep.handler(std::move(batch[i]));
    } else if (auto& verified = results[job_index[i]]) {
      ep.handler(std::move(*verified).release());
    }
    // else: failed authentication, dropped before delivery
  }
}

void ThreadNetwork::stop_endpoint(Endpoint& ep) {
  {
    const std::scoped_lock lock(ep.mutex);
    ep.stopping = true;
  }
  ep.cv.notify_all();
  if (ep.consumer.joinable()) ep.consumer.join();
}

void ThreadNetwork::register_endpoints(
    const std::vector<principal::Id>& ids, DeliveryFn handler) {
  auto endpoint = std::make_shared<Endpoint>();
  endpoint->handler = std::move(handler);

  std::vector<std::shared_ptr<Endpoint>> replaced;
  {
    const std::scoped_lock lock(registry_mutex_);
    // After shutdown() nothing may spawn a consumer: it would never be
    // stopped or joined (shutdown already swept the registry), and its
    // joinable std::thread would terminate the process on destruction.
    if (shut_down_) return;
    endpoint->auth_pool = auth_pool_;
    endpoint->auth_policy = auth_policy_;
    Endpoint* ep = endpoint.get();
    endpoint->consumer = std::thread([ep] {
      std::unique_lock lock(ep->mutex);
      for (;;) {
        ep->cv.wait(lock, [ep] { return ep->stopping || !ep->queue.empty(); });
        if (ep->stopping) return;
        // Swap the whole queue out and raise `busy` under one critical
        // section — the drain() handshake relies on "empty queue + !busy"
        // implying no in-flight deliveries.
        std::deque<Envelope> batch;
        batch.swap(ep->queue);
        ep->busy = true;
        lock.unlock();
        deliver_batch(*ep, std::move(batch));
        lock.lock();
        ep->busy = false;
        ep->cv.notify_all();
      }
    });
    // Re-registration replaces an endpoint (crash/restore in the cluster
    // helpers does this): old consumers are stopped OUTSIDE the registry
    // lock, after the new endpoint is visible. The shared_ptr keeps a
    // replaced Endpoint alive for any send() that already resolved it.
    for (const principal::Id id : ids) {
      auto it = endpoints_.find(id);
      if (it != endpoints_.end()) {
        if (it->second != endpoint) replaced.push_back(std::move(it->second));
        it->second = endpoint;
      } else {
        endpoints_.emplace(id, endpoint);
      }
    }
  }
  for (auto& old : replaced) {
    // The same old endpoint may have served several ids of this group;
    // stop_endpoint is idempotent (stopping is sticky, join checks
    // joinable).
    stop_endpoint(*old);
  }
}

void ThreadNetwork::register_endpoint(principal::Id id, DeliveryFn handler) {
  register_endpoints({id}, std::move(handler));
}

void ThreadNetwork::register_endpoint_group(
    const std::vector<principal::Id>& ids, DeliveryFn handler) {
  register_endpoints(ids, std::move(handler));
}

void ThreadNetwork::send(Envelope env) {
  std::shared_ptr<Endpoint> ep;
  {
    const std::scoped_lock lock(registry_mutex_);
    const auto it = endpoints_.find(env.dst);
    if (it == endpoints_.end()) return;  // unknown endpoint: drop
    ep = it->second;  // refcount bump: survives concurrent replacement
  }
  {
    const std::scoped_lock lock(ep->mutex);
    if (ep->stopping) return;
    ep->queue.push_back(std::move(env));
  }
  ep->cv.notify_one();
}

void ThreadNetwork::shutdown() {
  std::vector<std::shared_ptr<Endpoint>> eps;
  {
    const std::scoped_lock lock(registry_mutex_);
    if (shut_down_) return;
    shut_down_ = true;
    for (auto& [id, ep] : endpoints_) eps.push_back(ep);
  }
  for (auto& ep : eps) {
    const std::scoped_lock lock(ep->mutex);
    ep->stopping = true;
  }
  for (auto& ep : eps) ep->cv.notify_all();
  for (auto& ep : eps) {
    if (ep->consumer.joinable()) ep->consumer.join();
  }
}

void ThreadNetwork::drain() {
  std::vector<std::shared_ptr<Endpoint>> eps;
  {
    const std::scoped_lock lock(registry_mutex_);
    for (auto& [id, ep] : endpoints_) eps.push_back(ep);
  }
  for (auto& ep : eps) {
    std::unique_lock lock(ep->mutex);
    ep->cv.wait(lock, [&ep] {
      return ep->stopping || (ep->queue.empty() && !ep->busy);
    });
  }
}

}  // namespace sbft::net
