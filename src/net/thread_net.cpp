#include "net/thread_net.hpp"

namespace sbft::net {

ThreadNetwork::~ThreadNetwork() { shutdown(); }

void ThreadNetwork::register_endpoint(principal::Id id, DeliveryFn handler) {
  auto endpoint = std::make_unique<Endpoint>();
  endpoint->handler = std::move(handler);
  Endpoint* ep = endpoint.get();
  endpoint->consumer = std::thread([ep] {
    std::unique_lock lock(ep->mutex);
    for (;;) {
      ep->cv.wait(lock, [ep] { return ep->stopping || !ep->queue.empty(); });
      if (ep->stopping) return;
      Envelope env = std::move(ep->queue.front());
      ep->queue.pop_front();
      ep->busy = true;
      lock.unlock();
      ep->handler(std::move(env));
      lock.lock();
      ep->busy = false;
      ep->cv.notify_all();
    }
  });

  const std::scoped_lock lock(registry_mutex_);
  endpoints_.emplace(id, std::move(endpoint));
}

void ThreadNetwork::send(Envelope env) {
  Endpoint* ep = nullptr;
  {
    const std::scoped_lock lock(registry_mutex_);
    const auto it = endpoints_.find(env.dst);
    if (it == endpoints_.end()) return;  // unknown endpoint: drop
    ep = it->second.get();
  }
  {
    const std::scoped_lock lock(ep->mutex);
    if (ep->stopping) return;
    ep->queue.push_back(std::move(env));
  }
  ep->cv.notify_one();
}

void ThreadNetwork::shutdown() {
  std::vector<Endpoint*> eps;
  {
    const std::scoped_lock lock(registry_mutex_);
    if (shut_down_) return;
    shut_down_ = true;
    for (auto& [id, ep] : endpoints_) eps.push_back(ep.get());
  }
  for (Endpoint* ep : eps) {
    {
      const std::scoped_lock lock(ep->mutex);
      ep->stopping = true;
    }
    ep->cv.notify_all();
  }
  for (Endpoint* ep : eps) {
    if (ep->consumer.joinable()) ep->consumer.join();
  }
}

void ThreadNetwork::drain() {
  std::vector<Endpoint*> eps;
  {
    const std::scoped_lock lock(registry_mutex_);
    for (auto& [id, ep] : endpoints_) eps.push_back(ep.get());
  }
  for (Endpoint* ep : eps) {
    std::unique_lock lock(ep->mutex);
    ep->cv.wait(lock, [ep] {
      return ep->stopping || (ep->queue.empty() && !ep->busy);
    });
  }
}

}  // namespace sbft::net
