// Unified message-authentication layer.
//
// Ed25519 verification dominates the non-TEE cost of every protocol in this
// reproduction, and the same stored quorum envelopes (prepared certificates,
// checkpoint proofs, view-change proofs) are re-checked at many call sites.
// This layer makes "verified" a property the type system tracks and the
// runtime caches:
//
//  * VerifiedEnvelope — a move-only wrapper that can only be produced by the
//    auth layer. Code that stores or forwards quorum messages holds
//    VerifiedEnvelope, so proof-of-verification travels with the bytes and
//    redundant re-verification paths can be deleted.
//  * VerifyCache — a bounded LRU over (signer, message, signature) triples.
//    Envelopes that recur across view-change/new-view proofs and relayed
//    certificates verify exactly once per replica; every later check is a
//    hash lookup. Only *successful* verifications are cached, and the key
//    covers the signature bytes, so re-sending a cached payload with a
//    forged signature can never hit.
//  * VerifierPool — N worker threads verifying batches of inbound envelopes
//    in parallel ahead of delivery (the dsnet-style n_worker runner), with a
//    synchronous zero-worker mode so the deterministic simulator stays
//    reproducible.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "net/message.hpp"

namespace sbft::net {

/// Snapshot of VerifyCache counters (exported via common/stats Counters).
struct VerifyStats {
  std::uint64_t hits{0};       // checks answered without verifying (cache or
                               // a concurrent verification's result)
  std::uint64_t misses{0};     // full verifications that succeeded
  std::uint64_t failures{0};   // checks that failed (never cached)
  std::uint64_t evictions{0};  // LRU entries dropped at capacity
  [[nodiscard]] std::uint64_t lookups() const noexcept {
    return hits + misses + failures;
  }
};

/// An envelope whose signature has been checked against a specific signer.
/// Only the auth layer can construct one; holders may clone() it (copying a
/// proven envelope preserves the invariant) but never forge one.
class VerifiedEnvelope {
 public:
  VerifiedEnvelope(VerifiedEnvelope&&) noexcept = default;
  VerifiedEnvelope& operator=(VerifiedEnvelope&&) noexcept = default;
  VerifiedEnvelope(const VerifiedEnvelope&) = delete;
  VerifiedEnvelope& operator=(const VerifiedEnvelope&) = delete;

  [[nodiscard]] const Envelope& envelope() const noexcept { return env_; }
  /// The principal whose signature was checked.
  [[nodiscard]] principal::Id signer() const noexcept { return signer_; }
  /// Explicit copy of an already-proven envelope.
  [[nodiscard]] VerifiedEnvelope clone() const {
    return VerifiedEnvelope(env_, signer_);
  }
  /// Consumes the wrapper, releasing the envelope without a copy (delivery
  /// paths that hand the verified bytes onward).
  [[nodiscard]] Envelope release() && noexcept { return std::move(env_); }

 private:
  friend class VerifyCache;
  VerifiedEnvelope(Envelope env, principal::Id signer)
      : env_(std::move(env)), signer_(signer) {}

  Envelope env_;
  principal::Id signer_;
};

/// Unwraps verified envelopes for wire serialization (proof fields of
/// ViewChange / StateResponse messages carry plain envelopes).
[[nodiscard]] std::vector<Envelope> unwrap(
    const std::vector<VerifiedEnvelope>& envs);

/// Bounded LRU signature-verification cache. Thread-safe: the protocol
/// engines use it single-threaded, the VerifierPool shares one across
/// workers. A cache entry asserts "this exact (signer, message, signature)
/// triple verified true under this cache's Verifier".
class VerifyCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit VerifyCache(std::shared_ptr<const crypto::Verifier> verifier,
                       std::size_t capacity = kDefaultCapacity);

  /// Verifies an envelope signed over signing_input(type, payload) and wraps
  /// it on success.
  [[nodiscard]] std::optional<VerifiedEnvelope> verify(
      const Envelope& env, principal::Id claimed_signer);
  /// Move overload: the wrapped envelope is moved, not copied (batch
  /// delivery paths).
  [[nodiscard]] std::optional<VerifiedEnvelope> verify(
      Envelope&& env, principal::Id claimed_signer);

  /// Boolean variant of verify() for call sites that do not store the
  /// envelope.
  [[nodiscard]] bool check(const Envelope& env, principal::Id claimed_signer);

  /// Verifies an arbitrary (signer, message, signature) triple — SplitBFT
  /// header-signed pre-prepares and USIG UIs sign different byte strings
  /// than the generic envelope input.
  [[nodiscard]] bool check_raw(principal::Id signer, ByteView message,
                               ByteView signature);

  /// Wraps an envelope this node signed itself (no verification needed) and
  /// records it in the cache so later proof validations that include our own
  /// messages hit. Requires the private Signer as proof of authorship —
  /// holding a VerifyCache alone never mints a VerifiedEnvelope for a
  /// signature the holder could not have produced.
  [[nodiscard]] VerifiedEnvelope attest_own(Envelope env,
                                            const crypto::Signer& signer);

  [[nodiscard]] VerifyStats stats() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] const crypto::Verifier& verifier() const noexcept {
    return *verifier_;
  }

 private:
  /// Collision-resistant cache key over the full triple (check_raw path).
  [[nodiscard]] static Digest key_of(principal::Id signer, ByteView message,
                                     ByteView signature);
  /// Envelope-path key: built from the envelope's memoized one-shot digest
  /// instead of re-hashing the full message bytes. Domain-separated from
  /// key_of so the two schemes can never alias within one cache.
  [[nodiscard]] static Digest key_of_envelope(principal::Id signer,
                                              const Envelope& env);
  [[nodiscard]] bool lookup_or_verify(principal::Id signer, ByteView message,
                                      ByteView signature);
  /// Shared cache/inflight logic with a caller-computed key; `message` is
  /// only touched on a miss (the actual Ed25519 check).
  [[nodiscard]] bool lookup_or_verify_keyed(const Digest& key,
                                            principal::Id signer,
                                            ByteView message,
                                            ByteView signature);
  void insert(const Digest& key);
  void insert_locked(const Digest& key);

  std::shared_ptr<const crypto::Verifier> verifier_;
  std::size_t capacity_;

  /// A verification some thread is running (or has just finished). Waiters
  /// consume the claimer's result, so concurrent checks of the same triple
  /// — valid or forged — execute the verifier exactly once.
  struct Inflight {
    bool done{false};
    bool ok{false};
    std::size_t waiters{0};
  };

  mutable std::mutex mutex_;
  std::condition_variable inflight_cv_;
  std::list<Digest> lru_;  // front = most recent
  std::unordered_map<Digest, std::list<Digest>::iterator> index_;
  std::unordered_map<Digest, std::shared_ptr<Inflight>> inflight_;

  Counter hits_;
  Counter misses_;
  Counter failures_;
  Counter evictions_;
};

/// Verifies batches of envelopes across N worker threads sharing one
/// VerifyCache. With zero workers every batch is verified synchronously on
/// the calling thread — bit-identical results, deterministic order — which
/// is what the simulator uses. The calling thread always participates in
/// draining its own batch, so no configuration can deadlock on a missing
/// worker.
class VerifierPool {
 public:
  struct Job {
    Envelope env;
    principal::Id claimed_signer{0};
  };

  VerifierPool(std::shared_ptr<VerifyCache> cache, std::size_t workers);
  ~VerifierPool();
  VerifierPool(const VerifierPool&) = delete;
  VerifierPool& operator=(const VerifierPool&) = delete;

  /// Verifies all jobs; result i corresponds to job i (nullopt = rejected).
  /// Blocks until the whole batch is complete.
  [[nodiscard]] std::vector<std::optional<VerifiedEnvelope>> verify_batch(
      std::vector<Job> jobs);

  [[nodiscard]] std::size_t workers() const noexcept {
    return workers_.size();
  }
  [[nodiscard]] VerifyCache& cache() noexcept { return *cache_; }

 private:
  struct Batch {
    std::vector<Job> jobs;
    std::vector<std::optional<VerifiedEnvelope>> results;
    std::size_t next{0};       // next unclaimed job index (under pool mutex)
    std::size_t remaining{0};  // jobs not yet completed (under pool mutex)
  };

  /// Claims and runs jobs from `batch` until none are left unclaimed.
  /// Returns with the pool mutex held in `lock`.
  void drain(Batch& batch, std::unique_lock<std::mutex>& lock);

  std::shared_ptr<VerifyCache> cache_;

  std::mutex mutex_;
  std::condition_variable work_cv_;  // workers wait for batches
  std::condition_variable done_cv_;  // submitters wait for completion
  std::list<Batch*> pending_;        // batches with unclaimed jobs
  bool stopping_{false};
  std::vector<std::thread> workers_;
};

}  // namespace sbft::net
