// Wire envelope shared by all protocols.
//
// The payload is an opaque, protocol-defined serialized body; the signature
// covers (type || payload) so a quorum message stays valid no matter which
// peer it is relayed to. The sender's identity is bound inside the payload
// (every protocol message carries its sender field) — `src`/`dst` are
// untrusted routing hints for the environment.
//
// Zero-copy message fabric / the single-allocation invariant
// ----------------------------------------------------------
// `payload` and `signature` are SharedBytes frames: ref-counted immutable
// views, not owning vectors. The fabric maintains one wire image per
// message:
//
//  * A received envelope (`from_frame` / `deserialize`) holds exactly ONE
//    buffer — the wire frame. `payload`, `signature` and the signing input
//    are (offset, length) views into it; re-serializing for relay returns
//    that same frame. (Bookkeeping still allocates: the shared memo's
//    control block — "zero-copy" claims below are about frame buffers,
//    i.e. message bytes, not about every heap allocation.)
//  * Copying an envelope (broadcast fan-out, stored quorum certificates)
//    bumps reference counts; an N-way broadcast performs O(1) payload
//    allocations, not O(N).
//  * serialization (`wire()`), the signing input and the SHA-256 digest
//    over it are memoized and shared across copies: computed at most once
//    per message per replica, then reused by the VerifyCache key, batch
//    paths and checkpoint proofs. The memo self-invalidates when a field
//    is reassigned (it is keyed on the frames it was computed from).
//
// Like the plain struct it replaced, one Envelope *instance* is not safe
// for concurrent access from multiple threads; distinct copies sharing the
// same frames are (frames are immutable).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>

#include "common/bytes.hpp"
#include "common/frame.hpp"
#include "common/types.hpp"
#include "crypto/keyring.hpp"

namespace sbft::net {

struct Envelope {
  principal::Id src{0};
  principal::Id dst{0};
  std::uint32_t type{0};
  SharedBytes payload;
  SharedBytes signature;  // empty for unauthenticated messages

  /// The message's single serialized wire image, memoized: the first call
  /// builds the frame, later calls (and copies of this envelope) return the
  /// same allocation. For envelopes parsed via from_frame(), this is the
  /// received frame itself — serialize once, relay everywhere.
  [[nodiscard]] SharedBytes wire() const;

  /// The byte string the signature covers, (type || payload), as a view
  /// into the memoized frame: no allocation after the first call, and none
  /// at all on received envelopes (it aliases the wire image). Valid until
  /// this envelope's type/payload are reassigned.
  [[nodiscard]] ByteView signing_input_view() const;

  /// SHA-256 over signing_input_view() — the envelope's one-shot identity
  /// digest. Computed at most once per message per replica (memoized,
  /// shared across copies); the VerifyCache key, relay paths and proof
  /// validation all reuse it.
  [[nodiscard]] Digest digest() const;

  /// Zero-copy parse: on success the envelope's payload/signature are
  /// views into `frame`, and wire()/signing_input_view() alias it too —
  /// no further frame allocation or byte copy, ever (only the memo's
  /// control block is heap-allocated). nullopt on malformed/truncated
  /// input.
  [[nodiscard]] static std::optional<Envelope> from_frame(SharedBytes frame);

  /// Copying parse (one allocation: the wire frame `data` is copied into).
  [[nodiscard]] static std::optional<Envelope> deserialize(ByteView data);

  [[nodiscard]] friend bool operator==(const Envelope& a,
                                       const Envelope& b) noexcept {
    return a.src == b.src && a.dst == b.dst && a.type == b.type &&
           a.payload == b.payload && a.signature == b.signature;
  }

 private:
  /// Shared by every copy of the message (broadcast fan-out, stored quorum
  /// state). Keyed on the exact (type, payload frame) it was computed from
  /// — a reassigned payload simply misses and a fresh memo is built. The
  /// digest is filled lazily but exactly once across ALL copies: they share
  /// the memo, and call_once makes the fill safe even when copies live on
  /// different threads.
  struct Memo {
    SharedBytes payload_key;  // keepalive + identity of `payload`
    std::uint32_t type{0};
    SharedBytes signing;  // (type || payload); layout-aliases wire [16, 8+n)
    mutable std::once_flag digest_once;
    mutable Digest digest;  // valid once digest_once has run
  };

  [[nodiscard]] bool memo_base_valid() const noexcept;
  void ensure_base_memo() const;

  mutable std::shared_ptr<const Memo> memo_;
  // The wire image is cached per instance, not in the shared memo: it
  // encodes src/dst, and broadcast copies rewrite dst. Keyed on the exact
  // routing fields/signature it was built from; copies of an unmodified
  // envelope (relays, stored certificates) inherit the cache and share the
  // frame.
  mutable SharedBytes wire_image_;  // empty = not yet built
  mutable principal::Id wire_src_{0};
  mutable principal::Id wire_dst_{0};
  mutable SharedBytes wire_signature_key_;
};

/// The byte string a signature covers (freestanding compat helper; envelope
/// call sites use the allocation-free signing_input_view()).
[[nodiscard]] Bytes signing_input(std::uint32_t type, ByteView payload);

/// Signs an envelope in place with the given signer.
void sign_envelope(Envelope& env, const crypto::Signer& signer);

/// Verifies the envelope signature against the claimed principal.
[[nodiscard]] bool verify_envelope(const Envelope& env,
                                   const crypto::Verifier& verifier,
                                   principal::Id claimed_signer);

/// Fabric instrumentation: process-wide counts of envelope digest
/// computations and wire-image builds (bench/message_fabric asserts
/// "at most once per message" with these).
[[nodiscard]] std::uint64_t envelope_digests_computed() noexcept;
[[nodiscard]] std::uint64_t envelope_wire_builds() noexcept;

}  // namespace sbft::net
