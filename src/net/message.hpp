// Wire envelope shared by all protocols.
//
// The payload is an opaque, protocol-defined serialized body; the signature
// covers (type || payload) so a quorum message stays valid no matter which
// peer it is relayed to. The sender's identity is bound inside the payload
// (every protocol message carries its sender field) — `src`/`dst` are
// untrusted routing hints for the environment.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "crypto/keyring.hpp"

namespace sbft::net {

struct Envelope {
  principal::Id src{0};
  principal::Id dst{0};
  std::uint32_t type{0};
  Bytes payload;
  Bytes signature;  // empty for unauthenticated messages

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<Envelope> deserialize(ByteView data);

  [[nodiscard]] friend bool operator==(const Envelope&,
                                       const Envelope&) = default;
};

/// The byte string a signature covers.
[[nodiscard]] Bytes signing_input(std::uint32_t type, ByteView payload);

/// Signs an envelope in place with the given signer.
void sign_envelope(Envelope& env, const crypto::Signer& signer);

/// Verifies the envelope signature against the claimed principal.
[[nodiscard]] bool verify_envelope(const Envelope& env,
                                   const crypto::Verifier& verifier,
                                   principal::Id claimed_signer);

}  // namespace sbft::net
