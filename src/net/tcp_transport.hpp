// Real network transport: nonblocking epoll I/O over TCP or Unix-domain
// sockets, one event-loop thread per transport instance.
//
// Deployment model
// ----------------
// A TcpTransport is one NODE of a cluster: it hosts a set of local
// principals (a PBFT replica; a SplitBFT replica's broker + three enclave
// principals; a load generator's thousands of clients) and a routing
// function mapping any principal id to the node that hosts it. Connections
// are SIMPLEX: a node dials every node it sends to and uses that
// connection for egress only; the remote's own dial-back carries traffic
// the other way. That keeps connection ownership trivial (the sender
// reconnects, the receiver just accepts) at the cost of two sockets per
// node pair.
//
// Data path
// ---------
//  * Egress: send() routes by env.dst, then queues the envelope on the
//    peer's bounded SendQueue — NO serialization, no wire-image build. The
//    event loop flushes queues with writev scatter-gather: up to
//    kMaxSendIovecs iovecs per syscall, each envelope contributed as
//    (length prefix | src | dst)(scratch) + signing frame + (sig length) +
//    signature frame. A broadcast therefore shares ONE signing-input
//    allocation across every peer queue — per-recipient byte copies: zero.
//    Backpressure: a full queue drops the NEWEST envelope (counted); BFT
//    protocols treat the network as lossy, so clients retransmit.
//  * Ingress: edge-triggered reads land in a FrameDecoder staging buffer;
//    complete frames are emitted as slices of the sealed read buffer and
//    parsed with Envelope::from_frame() — no copies past the socket read.
//    Delivery runs on the event-loop thread; handlers may call send()
//    re-entrantly (the loop holds no locks during delivery).
//  * Reconnect: a broken or refused outbound connection retries with
//    exponential backoff (min..max); the un-flushed queue survives and the
//    partially-written front frame is rewound to its boundary so the fresh
//    connection never starts mid-frame.
//
// Threading: send(), add_peer() and register_endpoint are thread-safe
// (peers_ and the send queues are only ever touched under mu_, including
// by the loop thread and shutdown()); everything socket-shaped happens on
// the loop thread. stats() is readable anywhere.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/clock.hpp"
#include "net/framing.hpp"
#include "net/transport.hpp"

namespace sbft::net {

/// Transport-level counters (RunnerStats-style introspection; the workload
/// JSON report and the cluster harness surface these).
struct TransportStats {
  std::uint64_t bytes_in{0};
  std::uint64_t bytes_out{0};
  std::uint64_t frames_in{0};
  std::uint64_t frames_out{0};
  std::uint64_t writev_calls{0};
  std::uint64_t connects{0};            // successful establishments
  std::uint64_t reconnects{0};          // establishments after a break
  std::uint64_t accepts{0};
  std::uint64_t backpressure_drops{0};  // send-queue full, newest dropped
  std::uint64_t unrouted_drops{0};      // no peer/endpoint for dst
  std::uint64_t decode_errors{0};       // framing/parse failures

  /// State-transfer traffic (envelope types listed in
  /// Options::state_transfer_types): how much of the pipe recovery
  /// consumed, split out so a workload report can show protocol traffic
  /// and recovery traffic side by side. Egress is counted at enqueue.
  std::uint64_t state_frames_in{0};
  std::uint64_t state_frames_out{0};
  std::uint64_t state_bytes_in{0};
  std::uint64_t state_bytes_out{0};

  /// Scatter-gather batching actually engaged? (>= 2 means multiple
  /// envelopes per syscall on average.)
  [[nodiscard]] double frames_per_writev() const noexcept {
    return writev_calls ? static_cast<double>(frames_out) /
                              static_cast<double>(writev_calls)
                        : 0.0;
  }
};

class TcpTransport final : public Transport {
 public:
  using NodeId = std::uint32_t;
  /// Maps a principal to the cluster node hosting it. Must be pure and
  /// thread-safe (called from send() on any thread).
  using RouteFn = std::function<NodeId(principal::Id)>;

  struct Options {
    /// "host:port" (port 0 = ephemeral, see listen_port()) or
    /// "unix:/path" for same-host deployments. Empty = egress-only node.
    std::string listen_addr;
    std::size_t max_frame_bytes{kDefaultMaxFrameBytes};
    /// Per-peer send-queue byte budget (drop-newest beyond it).
    std::size_t send_queue_max_bytes{64u << 20};
    std::size_t read_chunk_bytes{256u << 10};
    Micros reconnect_backoff_min_us{10'000};
    Micros reconnect_backoff_max_us{1'000'000};
    /// Envelope types classified as state-transfer traffic in
    /// TransportStats (the transport itself is protocol-agnostic; the
    /// harness passes the protocol's StateRequest/StateChunk* tags).
    std::vector<std::uint32_t> state_transfer_types;
  };

  TcpTransport(NodeId self, Options options, RouteFn route);
  ~TcpTransport() override;
  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Declares a dialable peer. May be called before or after start();
  /// connections are established lazily on first send toward the node.
  /// Re-declaring a node updates its dial address (picked up by the next
  /// connect attempt — how a restarted node's new home is announced).
  /// Node ids must fit in 24 bits (they share an epoll tag word with the
  /// full 32-bit fd) — cluster indices, not arbitrary principal ids.
  void add_peer(NodeId node, std::string addr);

  /// Binds/listens and spawns the event loop. False on socket/bind errors
  /// (see last_error()).
  [[nodiscard]] bool start();

  /// Stops the loop and closes every socket. Queued envelopes are dropped
  /// (the network is allowed to be unreliable). Idempotent.
  void shutdown();

  /// The actually-bound TCP port (after start(); 0 for UDS/egress-only).
  [[nodiscard]] std::uint16_t listen_port() const noexcept {
    return listen_port_;
  }
  [[nodiscard]] const std::string& last_error() const noexcept {
    return last_error_;
  }
  [[nodiscard]] NodeId self() const noexcept { return self_; }

  // Transport interface.
  void send(Envelope env) override;
  void register_endpoint(principal::Id id, DeliveryFn handler) override;
  /// One handler serving several principals (workload stations; a SplitBFT
  /// replica's four principals). Same shape as ThreadNetwork's.
  void register_endpoint_group(const std::vector<principal::Id>& ids,
                               DeliveryFn handler);

  [[nodiscard]] TransportStats stats() const;

 private:
  struct Counters {
    std::atomic<std::uint64_t> bytes_in{0}, bytes_out{0};
    std::atomic<std::uint64_t> frames_in{0}, frames_out{0};
    std::atomic<std::uint64_t> writev_calls{0};
    std::atomic<std::uint64_t> connects{0}, reconnects{0}, accepts{0};
    std::atomic<std::uint64_t> backpressure_drops{0}, unrouted_drops{0};
    std::atomic<std::uint64_t> decode_errors{0};
    std::atomic<std::uint64_t> state_frames_in{0}, state_frames_out{0};
    std::atomic<std::uint64_t> state_bytes_in{0}, state_bytes_out{0};
  };

  struct Peer;  // outbound (egress) connection state
  struct Conn;  // inbound (ingress) connection state
  struct Loop;  // event-loop implementation detail (epoll fds etc.)

  void loop_main();
  void deliver(Envelope env);
  void wake() const;
  [[nodiscard]] bool is_state_type(std::uint32_t type) const noexcept;

  NodeId self_;
  Options options_;
  RouteFn route_;

  mutable std::mutex mu_;  // peers' queues + local delivery queue
  std::unordered_map<NodeId, std::unique_ptr<Peer>> peers_;
  std::deque<Envelope> local_;  // self-routed envelopes awaiting delivery

  std::mutex endpoints_mu_;
  std::unordered_map<principal::Id, std::shared_ptr<DeliveryFn>> endpoints_;

  std::unique_ptr<Loop> loop_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::uint16_t listen_port_{0};
  std::string listen_path_;  // UDS path to unlink on shutdown
  std::string last_error_;
  Counters counters_;
};

}  // namespace sbft::net
