#include "net/auth.hpp"

#include <cassert>

#include "common/serde.hpp"
#include "crypto/sha256.hpp"

namespace sbft::net {

std::vector<Envelope> unwrap(const std::vector<VerifiedEnvelope>& envs) {
  std::vector<Envelope> out;
  out.reserve(envs.size());
  for (const auto& ve : envs) out.push_back(ve.envelope());
  return out;
}

// -------------------------------------------------------------- VerifyCache

VerifyCache::VerifyCache(std::shared_ptr<const crypto::Verifier> verifier,
                         std::size_t capacity)
    : verifier_(std::move(verifier)),
      capacity_(capacity == 0 ? 1 : capacity) {}

namespace {
// Domain tags keep the raw-message and envelope-digest key schemes
// injective with respect to each other: a 32-byte raw message can never
// produce the same preimage as an envelope digest.
constexpr std::uint8_t kKeyDomainRaw = 0x01;
constexpr std::uint8_t kKeyDomainEnvelope = 0x02;
}  // namespace

Digest VerifyCache::key_of(principal::Id signer, ByteView message,
                           ByteView signature) {
  // Length-prefixing message and signature makes the encoding injective, so
  // a key collision requires a SHA-256 collision.
  Writer w;
  w.reserve(1 + 8 + 4 + message.size() + 4 + signature.size());
  w.u8(kKeyDomainRaw);
  w.u64(signer);
  w.bytes(message);
  w.bytes(signature);
  return crypto::sha256(w.data());
}

Digest VerifyCache::key_of_envelope(principal::Id signer,
                                    const Envelope& env) {
  // env.digest() is the memoized one-shot SHA-256 over the signing input —
  // computed at most once per message per replica, so a repeat check hashes
  // 109 bytes here instead of the full message, and builds no signing-input
  // buffer at all.
  Writer w;
  w.reserve(1 + 8 + 32 + 4 + env.signature.size());
  w.u8(kKeyDomainEnvelope);
  w.u64(signer);
  w.raw(env.digest().view());
  w.bytes(env.signature);
  return crypto::sha256(w.data());
}

bool VerifyCache::lookup_or_verify(principal::Id signer, ByteView message,
                                   ByteView signature) {
  return lookup_or_verify_keyed(key_of(signer, message, signature), signer,
                                message, signature);
}

bool VerifyCache::lookup_or_verify_keyed(const Digest& key,
                                         principal::Id signer,
                                         ByteView message,
                                         ByteView signature) {
  std::shared_ptr<Inflight> job;
  {
    std::unique_lock lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // touch
      hits_.add();
      return true;
    }
    const auto busy = inflight_.find(key);
    if (busy != inflight_.end()) {
      // Another thread is verifying this exact triple: consume its result
      // instead of duplicating the work (matters most for forged-message
      // floods, where the result is never cached).
      job = busy->second;
      ++job->waiters;
      inflight_cv_.wait(lock, [&] { return job->done; });
      --job->waiters;
      // The map entry may already belong to a newer verification of the
      // same key; only the last reader of THIS job may erase it.
      const auto cur = inflight_.find(key);
      if (cur != inflight_.end() && cur->second == job &&
          job->waiters == 0) {
        inflight_.erase(cur);
      }
      if (job->ok) {
        hits_.add();
      } else {
        failures_.add();
      }
      return job->ok;
    }
    job = std::make_shared<Inflight>();
    inflight_.emplace(key, job);
  }
  // Verify outside the lock: this is the expensive part, and pool workers
  // must be able to verify *different* triples concurrently.
  const bool ok = verifier_->verify(signer, message, signature);
  {
    const std::scoped_lock lock(mutex_);
    job->done = true;
    job->ok = ok;
    if (ok) insert_locked(key);
    const auto cur = inflight_.find(key);
    if (cur != inflight_.end() && cur->second == job && job->waiters == 0) {
      inflight_.erase(cur);
    }
  }
  inflight_cv_.notify_all();
  if (ok) {
    misses_.add();
  } else {
    failures_.add();
  }
  return ok;
}

void VerifyCache::insert(const Digest& key) {
  const std::scoped_lock lock(mutex_);
  insert_locked(key);
}

void VerifyCache::insert_locked(const Digest& key) {
  if (index_.contains(key)) return;  // already present; fine
  lru_.push_front(key);
  index_.emplace(key, lru_.begin());
  while (index_.size() > capacity_) {
    index_.erase(lru_.back());
    lru_.pop_back();
    evictions_.add();
  }
}

std::optional<VerifiedEnvelope> VerifyCache::verify(
    const Envelope& env, principal::Id claimed_signer) {
  if (!check(env, claimed_signer)) return std::nullopt;
  return VerifiedEnvelope(env, claimed_signer);
}

std::optional<VerifiedEnvelope> VerifyCache::verify(
    Envelope&& env, principal::Id claimed_signer) {
  if (!check(env, claimed_signer)) return std::nullopt;
  return VerifiedEnvelope(std::move(env), claimed_signer);
}

bool VerifyCache::check(const Envelope& env, principal::Id claimed_signer) {
  // Keyed on the envelope's memoized digest; the signing input is a view
  // into the message's single wire image (no per-check allocation).
  return lookup_or_verify_keyed(key_of_envelope(claimed_signer, env),
                                claimed_signer, env.signing_input_view(),
                                env.signature);
}

bool VerifyCache::check_raw(principal::Id signer, ByteView message,
                            ByteView signature) {
  return lookup_or_verify(signer, message, signature);
}

VerifiedEnvelope VerifyCache::attest_own(Envelope env,
                                         const crypto::Signer& signer) {
  const principal::Id id = signer.id();
  if (!env.signature.empty()) {
    // Debug guard on the cache invariant: both schemes are deterministic,
    // so authorship is checkable by re-signing. A call site that attests
    // an envelope the signer did not produce would otherwise poison the
    // cache silently.
    assert(env.signature == ByteView{signer.sign(env.signing_input_view())});
    insert(key_of_envelope(id, env));
  }
  return VerifiedEnvelope(std::move(env), id);
}

VerifyStats VerifyCache::stats() const {
  VerifyStats s;
  s.hits = hits_.value();
  s.misses = misses_.value();
  s.failures = failures_.value();
  s.evictions = evictions_.value();
  return s;
}

std::size_t VerifyCache::size() const {
  const std::scoped_lock lock(mutex_);
  return index_.size();
}

// ------------------------------------------------------------- VerifierPool

VerifierPool::VerifierPool(std::shared_ptr<VerifyCache> cache,
                           std::size_t workers)
    : cache_(std::move(cache)) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] {
      std::unique_lock lock(mutex_);
      for (;;) {
        work_cv_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
        if (stopping_) return;
        Batch& batch = *pending_.front();
        drain(batch, lock);
      }
    });
  }
}

VerifierPool::~VerifierPool() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void VerifierPool::drain(Batch& batch, std::unique_lock<std::mutex>& lock) {
  while (batch.next < batch.jobs.size()) {
    const std::size_t i = batch.next++;
    if (batch.next == batch.jobs.size()) {
      // Fully claimed: stop advertising the batch to other workers.
      pending_.remove(&batch);
    }
    lock.unlock();
    auto result = cache_->verify(std::move(batch.jobs[i].env),
                                 batch.jobs[i].claimed_signer);
    lock.lock();
    batch.results[i] = std::move(result);
    if (--batch.remaining == 0) done_cv_.notify_all();
  }
}

std::vector<std::optional<VerifiedEnvelope>> VerifierPool::verify_batch(
    std::vector<Job> jobs) {
  Batch batch;
  batch.results.resize(jobs.size());
  batch.remaining = jobs.size();
  batch.jobs = std::move(jobs);
  if (batch.jobs.empty()) return {};

  std::unique_lock lock(mutex_);
  if (!workers_.empty()) {
    pending_.push_back(&batch);
    work_cv_.notify_all();
  }
  // The submitter always helps drain its own batch: in synchronous mode
  // (zero workers) it does all the work, in pooled mode it races the
  // workers for unclaimed jobs.
  drain(batch, lock);
  done_cv_.wait(lock, [&batch] { return batch.remaining == 0; });
  return std::move(batch.results);
}

}  // namespace sbft::net
