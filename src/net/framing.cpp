#include "net/framing.hpp"

#include <sys/uio.h>

#include <cstring>
#include <limits>

namespace sbft::net {

namespace {

void put_u32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void put_u64(std::uint8_t* p, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

[[nodiscard]] std::size_t read_u32(const std::uint8_t* p) noexcept {
  return static_cast<std::size_t>(p[0]) | (static_cast<std::size_t>(p[1]) << 8) |
         (static_cast<std::size_t>(p[2]) << 16) |
         (static_cast<std::size_t>(p[3]) << 24);
}

}  // namespace

std::array<std::uint8_t, kFramePrefixBytes> frame_prefix(
    std::size_t n) noexcept {
  std::array<std::uint8_t, kFramePrefixBytes> out{};
  put_u32(out.data(), static_cast<std::uint32_t>(n));
  return out;
}

std::size_t envelope_frame_bytes(const Envelope& env) {
  return kEnvelopeHeaderBytes + env.signing_input_view().size() + 4 +
         env.signature.size();
}

// ---------------------------------------------------------- FrameDecoder

FrameDecoder::FrameDecoder(std::size_t max_frame_bytes,
                           std::size_t read_chunk_bytes)
    : max_frame_bytes_(max_frame_bytes),
      chunk_bytes_(std::max<std::size_t>(read_chunk_bytes, 512)) {}

std::size_t FrameDecoder::frame_length_at(std::size_t pos) noexcept {
  if (filled_ - pos < kFramePrefixBytes) {
    return std::numeric_limits<std::size_t>::max();
  }
  const std::size_t len = read_u32(staging_.data() + pos);
  if (len > max_frame_bytes_) {
    failed_ = true;
    return std::numeric_limits<std::size_t>::max();
  }
  return len;
}

FrameDecoder::WriteArea FrameDecoder::prepare() {
  // Size the buffer for at least one chunk of fresh input — or, when the
  // current frame's length is already known, for the whole remainder of
  // that frame (one resize instead of many for bodies above chunk size).
  // A length is only used for sizing after its plausibility check passed.
  std::size_t want = chunk_bytes_;
  if (!failed_ && filled_ >= kFramePrefixBytes) {
    const std::size_t len = frame_length_at(0);
    if (!failed_ && len != std::numeric_limits<std::size_t>::max()) {
      const std::size_t frame_total = kFramePrefixBytes + len;
      if (frame_total > filled_) {
        want = std::max(want, frame_total - filled_);
      }
    }
  }
  if (staging_.size() - filled_ < want) {
    staging_.resize(filled_ + want);
  }
  return {staging_.data() + filled_, staging_.size() - filled_};
}

bool FrameDecoder::commit(std::size_t n, std::vector<SharedBytes>& out) {
  if (failed_) return false;
  filled_ += n;

  // Scan for complete frames first; seal the buffer only if there is one.
  std::size_t pos = 0;
  std::size_t complete = 0;
  while (true) {
    const std::size_t len = frame_length_at(pos);
    if (failed_) return false;
    if (len == std::numeric_limits<std::size_t>::max() ||
        filled_ - pos - kFramePrefixBytes < len) {
      break;
    }
    pos += kFramePrefixBytes + len;
    ++complete;
  }
  if (complete == 0) return true;

  // Seal: the staging buffer becomes immutable; frames slice it. The
  // partial tail (if any) seeds the next staging buffer — the only bytes
  // ever copied after the socket read, bounded by one frame.
  const std::size_t tail = filled_ - pos;
  Bytes sealed = std::move(staging_);
  sealed.resize(filled_);
  staging_ = Bytes(sealed.end() - static_cast<std::ptrdiff_t>(tail),
                   sealed.end());
  filled_ = tail;

  const SharedBytes buffer(std::move(sealed));
  std::size_t at = 0;
  for (std::size_t i = 0; i < complete; ++i) {
    const std::size_t len = read_u32(buffer.data() + at);
    out.push_back(buffer.slice(at + kFramePrefixBytes, len));
    at += kFramePrefixBytes + len;
  }
  return true;
}

void FrameDecoder::reset() {
  staging_.clear();
  filled_ = 0;
  failed_ = false;
}

// ------------------------------------------------------------- SendQueue

SendQueue::SendQueue(std::size_t max_bytes) : max_bytes_(max_bytes) {}

bool SendQueue::push(Envelope env) {
  // Materialize the views first (signing_input_view() memoizes on first
  // use; for received/relayed envelopes it aliases the original wire
  // image), then compute the frame length from them.
  const ByteView signing = env.signing_input_view();
  const ByteView sig = env.signature.view();
  const std::size_t frame_len =
      kEnvelopeHeaderBytes + signing.size() + 4 + sig.size();
  const std::size_t total = kFramePrefixBytes + frame_len;
  if (bytes_ + total > max_bytes_) return false;

  Item item;
  put_u32(item.head.data(), static_cast<std::uint32_t>(frame_len));
  put_u64(item.head.data() + kFramePrefixBytes, env.src);
  put_u64(item.head.data() + kFramePrefixBytes + 8, env.dst);
  put_u32(item.sig_len.data(), static_cast<std::uint32_t>(sig.size()));
  item.env = std::move(env);
  item.signing = signing;
  item.sig = sig;
  item.total = total;
  items_.push_back(std::move(item));
  bytes_ += total;
  return true;
}

std::array<std::pair<const std::uint8_t*, std::size_t>, 4>
SendQueue::segments(const Item& item) noexcept {
  return {{{item.head.data(), item.head.size()},
           {item.signing.data(), item.signing.size()},
           {item.sig_len.data(), item.sig_len.size()},
           {item.sig.data(), item.sig.size()}}};
}

std::size_t SendQueue::fill_iovecs(struct iovec* iov,
                                   std::size_t max_iov) const {
  std::size_t count = 0;
  std::size_t skip = cursor_;  // only ever inside the FIRST item
  for (const Item& item : items_) {
    for (const auto& [data, len] : segments(item)) {
      if (skip >= len) {
        skip -= len;
        continue;
      }
      if (count >= max_iov) return count;
      iov[count].iov_base = const_cast<std::uint8_t*>(data) + skip;
      iov[count].iov_len = len - skip;
      skip = 0;
      ++count;
    }
  }
  return count;
}

std::size_t SendQueue::advance(std::size_t n) {
  bytes_ -= n;
  cursor_ += n;
  std::size_t retired = 0;
  while (!items_.empty() && cursor_ >= items_.front().total) {
    cursor_ -= items_.front().total;
    items_.pop_front();
    ++retired;
  }
  return retired;
}

void SendQueue::rewind_front() noexcept {
  bytes_ += cursor_;
  cursor_ = 0;
}

void SendQueue::clear() {
  items_.clear();
  cursor_ = 0;
  bytes_ = 0;
}

}  // namespace sbft::net
