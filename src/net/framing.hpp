// Wire framing for the TCP transport: length-prefixed envelope frames,
// a zero-copy stream decoder, and the scatter-gather send queue.
//
// On the wire a message is
//
//   [0] frame length u32 (little-endian, length of the envelope wire image)
//   [4] Envelope::wire() bytes (see net/message.cpp for the inner layout)
//
// Both directions are allocation-disciplined:
//
//  * Ingest (FrameDecoder): socket reads land in a mutable staging buffer;
//    the moment it holds at least one complete frame the buffer is SEALED
//    into an immutable SharedBytes and every complete frame is emitted as a
//    slice of it — Envelope::from_frame() then aliases that slice, so past
//    the socket read the bytes of a complete frame are never copied again.
//    Only a partial frame's tail is carried (copied) into the next staging
//    buffer, bounded by one frame.
//  * Egress (SendQueue): envelopes are queued WITHOUT building their wire
//    image. Each one is flushed as four writev segments — a 20-byte scratch
//    head (length prefix | src | dst), the shared signing-input frame
//    (type | payload length | payload), a 4-byte signature length, and the
//    signature frame — so a broadcast's N queue entries all alias the ONE
//    signing-input allocation; per-recipient byte copies are zero and
//    there is no coalescing copy before the syscall. Partial writes resume
//    mid-segment via a byte cursor; a connection teardown rewinds the
//    partially-written front envelope to its frame boundary.
//
// The decoder and queue are plain single-threaded state machines so the
// robustness tests can drive them byte by byte without sockets; the
// TcpTransport event loop owns the synchronization.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/frame.hpp"
#include "net/message.hpp"

struct iovec;  // <sys/uio.h>; forward-declared to keep this header light

namespace sbft::net {

/// Length-prefix width, bytes.
inline constexpr std::size_t kFramePrefixBytes = 4;

/// Envelope wire-header width (src u64 + dst u64) preceding the signing
/// input; mirrors the layout in net/message.cpp.
inline constexpr std::size_t kEnvelopeHeaderBytes = 16;

/// Default plausibility bound on one frame: a length prefix above this is a
/// protocol error and resets the connection BEFORE any buffer is sized from
/// the untrusted value (same discipline as the serde plausibility bounds).
inline constexpr std::size_t kDefaultMaxFrameBytes = 16u << 20;

/// Encodes the length prefix for a frame of `n` bytes.
[[nodiscard]] std::array<std::uint8_t, kFramePrefixBytes> frame_prefix(
    std::size_t n) noexcept;

/// Serialized frame length of one envelope (prefix excluded).
[[nodiscard]] std::size_t envelope_frame_bytes(const Envelope& env);

/// Streaming frame decoder; one per connection.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes,
                        std::size_t read_chunk_bytes = 64u << 10);

  /// Writable region for the next socket read. Never smaller than one
  /// chunk; sized from a length prefix only after its plausibility check.
  struct WriteArea {
    std::uint8_t* data;
    std::size_t size;
  };
  [[nodiscard]] WriteArea prepare();

  /// Consumes `n` bytes just read into prepare()'s area. Complete frames
  /// are appended to `out` as slices of the sealed read buffer (zero-copy).
  /// Returns false on a protocol error (implausible length prefix) — the
  /// connection must be reset; the decoder is poisoned until reset().
  [[nodiscard]] bool commit(std::size_t n, std::vector<SharedBytes>& out);

  /// Bytes of a partial frame (prefix or body) awaiting more input.
  [[nodiscard]] std::size_t buffered() const noexcept { return filled_; }
  [[nodiscard]] bool failed() const noexcept { return failed_; }
  void reset();

 private:
  /// Length of the frame starting at `pos`, or SIZE_MAX if the prefix is
  /// still incomplete. Sets failed_ on an implausible length.
  [[nodiscard]] std::size_t frame_length_at(std::size_t pos) noexcept;

  std::size_t max_frame_bytes_;
  std::size_t chunk_bytes_;
  Bytes staging_;
  std::size_t filled_{0};
  bool failed_{false};
};

/// Bounded per-peer egress queue with a partial-write cursor.
///
/// push() beyond the byte budget drops the NEWEST envelope (the queue's
/// contents are older and already promised); the caller counts the drop.
class SendQueue {
 public:
  explicit SendQueue(std::size_t max_bytes);

  /// Queues one envelope. Returns false (and queues nothing) if the
  /// queue's byte budget would be exceeded — drop-newest backpressure.
  [[nodiscard]] bool push(Envelope env);

  /// Fills up to `max_iov` iovecs with queued bytes starting at the write
  /// cursor (the first entry may begin mid-frame after a partial write).
  /// Returns the number of iovecs filled; 0 iff empty.
  [[nodiscard]] std::size_t fill_iovecs(struct iovec* iov,
                                        std::size_t max_iov) const;

  /// Advances the cursor by `n` written bytes; returns the number of
  /// envelopes fully retired by this advance (the frames-per-syscall
  /// numerator).
  std::size_t advance(std::size_t n);

  /// Rewinds the cursor to the front envelope's frame boundary: called
  /// when the connection breaks mid-frame, so the replacement connection
  /// retransmits the whole frame instead of resuming an orphaned tail.
  void rewind_front() noexcept;

  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] std::size_t queued_frames() const noexcept {
    return items_.size();
  }
  /// Un-written bytes across the queue (budget accounting).
  [[nodiscard]] std::size_t queued_bytes() const noexcept { return bytes_; }
  /// Drops everything (connection torn down for good).
  void clear();

 private:
  struct Item {
    /// First wire bytes, built at push time: length prefix | src | dst.
    std::array<std::uint8_t, kFramePrefixBytes + kEnvelopeHeaderBytes> head;
    std::array<std::uint8_t, 4> sig_len;
    Envelope env;      // keeps the frames the views below alias alive
    ByteView signing;  // (type | payload length | payload) — shared across
                       // every queue this message sits in
    ByteView sig;
    std::size_t total;  // head + signing + sig_len + sig
  };

  /// The item's four wire segments in transmission order.
  [[nodiscard]] static std::array<std::pair<const std::uint8_t*, std::size_t>,
                                  4>
  segments(const Item& item) noexcept;

  std::deque<Item> items_;
  std::size_t cursor_{0};  // bytes of items_.front() already written
  std::size_t bytes_{0};   // un-written bytes across the queue
  std::size_t max_bytes_;
};

}  // namespace sbft::net
