#include "net/tcp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/clock.hpp"

namespace sbft::net {

namespace {

/// Dialer preamble: 8 magic bytes + the dialing node's id (LE u64). The
/// acceptor reads it before switching the connection to frame decoding.
constexpr std::array<std::uint8_t, 8> kMagic = {'S', 'B', 'F', 'T',
                                               '-', 'T', 'C', 'P'};
constexpr std::size_t kPreambleBytes = 16;

/// writev scatter-gather width: plenty for dozens of envelopes per syscall
/// while staying far under IOV_MAX (1024).
constexpr std::size_t kMaxSendIovecs = 256;

[[nodiscard]] Micros now_us() {
  static const SteadyClock clock;
  return clock.now();
}

void set_nonblocking_nodelay(int fd, bool tcp) {
  // SOCK_NONBLOCK covers sockets we create; accepted fds use accept4.
  if (tcp) {
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
}

/// Parsed listen/dial address: TCP host:port or unix:/path.
struct Addr {
  bool uds{false};
  sockaddr_storage ss{};
  socklen_t len{0};
  std::string path;  // UDS only

  [[nodiscard]] static bool parse(const std::string& spec, Addr& out,
                                  std::string& error) {
    if (spec.rfind("unix:", 0) == 0) {
      out.uds = true;
      out.path = spec.substr(5);
      auto* sun = reinterpret_cast<sockaddr_un*>(&out.ss);
      sun->sun_family = AF_UNIX;
      if (out.path.size() + 1 > sizeof(sun->sun_path)) {
        error = "unix socket path too long: " + out.path;
        return false;
      }
      std::memcpy(sun->sun_path, out.path.c_str(), out.path.size() + 1);
      out.len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) +
                                       out.path.size() + 1);
      return true;
    }
    const auto colon = spec.rfind(':');
    if (colon == std::string::npos) {
      error = "address must be host:port or unix:/path: " + spec;
      return false;
    }
    const std::string host = spec.substr(0, colon);
    const std::string port_str = spec.substr(colon + 1);
    // Strict decimal port: a typo'd port must fail loudly, not silently
    // become 0 (atoi) or wrap mod 65536. Port 0 stays legal — it means
    // "ephemeral" for listen addresses (see Options::listen_addr).
    if (port_str.empty() || port_str.size() > 5 ||
        port_str.find_first_not_of("0123456789") != std::string::npos) {
      error = "port must be decimal 0..65535: " + spec;
      return false;
    }
    const unsigned long port = std::strtoul(port_str.c_str(), nullptr, 10);
    if (port > 65535) {
      error = "port out of range [0, 65535]: " + spec;
      return false;
    }
    auto* sin = reinterpret_cast<sockaddr_in*>(&out.ss);
    sin->sin_family = AF_INET;
    sin->sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &sin->sin_addr) != 1) {
      error = "cannot parse IPv4 host: " + host;
      return false;
    }
    out.len = sizeof(sockaddr_in);
    return true;
  }
};

/// epoll user-data tags.
enum class FdKind : std::uint64_t { Listen = 1, Wake = 2, PeerOut = 3,
                                    ConnIn = 4 };

/// Tag layout: kind(8) | node id(24) | fd(32). The FULL fd is encoded so
/// conn lookups and the PeerOut stale-fd check never alias even when fd
/// numbers exceed 2^24. Node ids are cluster indices and must fit 24 bits
/// (documented on add_peer).
[[nodiscard]] std::uint64_t tag(FdKind kind, std::uint32_t id, int fd) {
  return (static_cast<std::uint64_t>(kind) << 56) |
         (static_cast<std::uint64_t>(id & 0xffffff) << 32) |
         static_cast<std::uint32_t>(fd);
}

}  // namespace

// An outbound, egress-only connection to one peer node.
struct TcpTransport::Peer {
  explicit Peer(NodeId n, std::string a, std::size_t queue_max)
      : node(n), addr(std::move(a)), queue(queue_max) {}

  NodeId node;
  std::string addr;
  SendQueue queue;  // guarded by TcpTransport::mu_

  // Loop-thread-only connection state.
  enum class State { Disconnected, Connecting, Connected };
  State state{State::Disconnected};
  int fd{-1};
  std::array<std::uint8_t, kPreambleBytes> preamble{};
  std::size_t preamble_sent{kPreambleBytes};  // == size when done
  Micros backoff_us{0};
  Micros retry_at{0};
  bool ever_connected{false};
};

// An inbound, ingress-only connection from some (not yet known) peer.
struct TcpTransport::Conn {
  explicit Conn(int f, std::size_t max_frame, std::size_t chunk)
      : fd(f), decoder(max_frame, chunk) {}

  int fd;
  FrameDecoder decoder;
  std::array<std::uint8_t, kPreambleBytes> hello{};
  std::size_t hello_got{0};
  bool identified{false};
};

struct TcpTransport::Loop {
  int epoll_fd{-1};
  int wake_fd{-1};
  int listen_fd{-1};
  bool listen_uds{false};
  /// Nonzero when accept4 failed with an fd-exhaustion-class error: the
  /// listen fd is edge-triggered, so the pending backlog will not
  /// re-trigger EPOLLIN by itself — retry at this deadline instead.
  Micros accept_retry_at{0};
  std::unordered_map<int, std::unique_ptr<Conn>> conns;
};

TcpTransport::TcpTransport(NodeId self, Options options, RouteFn route)
    : self_(self), options_(std::move(options)), route_(std::move(route)),
      loop_(std::make_unique<Loop>()) {}

TcpTransport::~TcpTransport() { shutdown(); }

void TcpTransport::add_peer(NodeId node, std::string addr) {
  const std::scoped_lock lock(mu_);
  auto it = peers_.find(node);
  if (it != peers_.end()) {
    // Re-declaration updates the dial address (used on the next connect
    // attempt) — how a supervisor announces a restarted node's new home.
    it->second->addr = std::move(addr);
    return;
  }
  peers_.emplace(node, std::make_unique<Peer>(node, std::move(addr),
                                              options_.send_queue_max_bytes));
}

bool TcpTransport::start() {
  if (running_.exchange(true)) return true;
  loop_->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  loop_->wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (loop_->epoll_fd < 0 || loop_->wake_fd < 0) {
    last_error_ = "epoll/eventfd creation failed";
    running_.store(false);
    return false;
  }
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET;
  ev.data.u64 = tag(FdKind::Wake, 0, loop_->wake_fd);
  ::epoll_ctl(loop_->epoll_fd, EPOLL_CTL_ADD, loop_->wake_fd, &ev);

  if (!options_.listen_addr.empty()) {
    Addr addr;
    if (!Addr::parse(options_.listen_addr, addr, last_error_)) {
      running_.store(false);
      return false;
    }
    loop_->listen_uds = addr.uds;
    if (addr.uds) ::unlink(addr.path.c_str());
    const int fd = ::socket(addr.uds ? AF_UNIX : AF_INET,
                            SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr.ss), addr.len) != 0 ||
        ::listen(fd, 256) != 0) {
      last_error_ = "bind/listen failed on " + options_.listen_addr + ": " +
                    std::strerror(errno);
      ::close(fd);
      running_.store(false);
      return false;
    }
    if (!addr.uds) {
      sockaddr_in bound{};
      socklen_t blen = sizeof(bound);
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &blen);
      listen_port_ = ntohs(bound.sin_port);
    } else {
      listen_path_ = addr.path;
    }
    loop_->listen_fd = fd;
    epoll_event lev{};
    lev.events = EPOLLIN | EPOLLET;
    lev.data.u64 = tag(FdKind::Listen, 0, fd);
    ::epoll_ctl(loop_->epoll_fd, EPOLL_CTL_ADD, fd, &lev);
  }

  thread_ = std::thread([this] { loop_main(); });
  return true;
}

void TcpTransport::shutdown() {
  if (!running_.exchange(false)) return;
  wake();
  if (thread_.joinable()) thread_.join();
  // Loop thread has exited, but send() is documented thread-safe and may
  // still be running: everything it touches (peers_, queues, local_, the
  // wake fd) is torn down under mu_ so a late send races with nothing.
  {
    const std::scoped_lock lock(mu_);
    for (auto& [node, peer] : peers_) {
      if (peer->fd >= 0) ::close(peer->fd);
      peer->fd = -1;
      peer->state = Peer::State::Disconnected;
      peer->queue.clear();
    }
    local_.clear();
    if (loop_->wake_fd >= 0) ::close(loop_->wake_fd);
    loop_->wake_fd = -1;
  }
  for (auto& [fd, conn] : loop_->conns) ::close(fd);
  loop_->conns.clear();
  if (loop_->listen_fd >= 0) ::close(loop_->listen_fd);
  if (loop_->epoll_fd >= 0) ::close(loop_->epoll_fd);
  loop_->listen_fd = loop_->epoll_fd = -1;
  if (!listen_path_.empty()) ::unlink(listen_path_.c_str());
}

void TcpTransport::wake() const {
  // mu_ also guards the wake fd's LIFETIME: shutdown() closes and resets
  // it under the same lock, so a concurrent send() can never write into a
  // closed (and possibly kernel-reused) descriptor.
  const std::scoped_lock lock(mu_);
  if (loop_->wake_fd >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const auto n =
        ::write(loop_->wake_fd, &one, sizeof(one));
  }
}

void TcpTransport::send(Envelope env) {
  const NodeId dst_node = route_(env.dst);
  if (dst_node == self_) {
    // Local loopback: enqueue for the event loop — NEVER deliver inline
    // (the caller may be a handler already holding its engine's lock).
    {
      const std::scoped_lock lock(mu_);
      local_.push_back(std::move(env));
    }
    wake();
    return;
  }
  const bool state_frame = is_state_type(env.type);
  // wire() memoizes the frame the queue flush will send, so sizing the
  // state-transfer counter here costs nothing extra.
  const std::uint64_t frame_bytes = state_frame ? env.wire().size() : 0;
  bool dropped_backpressure = false;
  bool dropped_unrouted = false;
  {
    const std::scoped_lock lock(mu_);
    const auto it = peers_.find(dst_node);
    if (it == peers_.end()) {
      dropped_unrouted = true;
    } else if (!it->second->queue.push(std::move(env))) {
      dropped_backpressure = true;
    }
  }
  if (dropped_unrouted) {
    counters_.unrouted_drops.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (dropped_backpressure) {
    counters_.backpressure_drops.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (state_frame) {
    counters_.state_frames_out.fetch_add(1, std::memory_order_relaxed);
    counters_.state_bytes_out.fetch_add(frame_bytes,
                                        std::memory_order_relaxed);
  }
  wake();
}

bool TcpTransport::is_state_type(std::uint32_t type) const noexcept {
  const auto& types = options_.state_transfer_types;
  return std::find(types.begin(), types.end(), type) != types.end();
}

void TcpTransport::register_endpoint(principal::Id id, DeliveryFn handler) {
  const std::scoped_lock lock(endpoints_mu_);
  endpoints_[id] = std::make_shared<DeliveryFn>(std::move(handler));
}

void TcpTransport::register_endpoint_group(
    const std::vector<principal::Id>& ids, DeliveryFn handler) {
  auto shared = std::make_shared<DeliveryFn>(std::move(handler));
  const std::scoped_lock lock(endpoints_mu_);
  for (const principal::Id id : ids) endpoints_[id] = shared;
}

TransportStats TcpTransport::stats() const {
  TransportStats s;
  s.bytes_in = counters_.bytes_in.load(std::memory_order_relaxed);
  s.bytes_out = counters_.bytes_out.load(std::memory_order_relaxed);
  s.frames_in = counters_.frames_in.load(std::memory_order_relaxed);
  s.frames_out = counters_.frames_out.load(std::memory_order_relaxed);
  s.writev_calls = counters_.writev_calls.load(std::memory_order_relaxed);
  s.connects = counters_.connects.load(std::memory_order_relaxed);
  s.reconnects = counters_.reconnects.load(std::memory_order_relaxed);
  s.accepts = counters_.accepts.load(std::memory_order_relaxed);
  s.backpressure_drops =
      counters_.backpressure_drops.load(std::memory_order_relaxed);
  s.unrouted_drops = counters_.unrouted_drops.load(std::memory_order_relaxed);
  s.decode_errors = counters_.decode_errors.load(std::memory_order_relaxed);
  s.state_frames_in =
      counters_.state_frames_in.load(std::memory_order_relaxed);
  s.state_frames_out =
      counters_.state_frames_out.load(std::memory_order_relaxed);
  s.state_bytes_in = counters_.state_bytes_in.load(std::memory_order_relaxed);
  s.state_bytes_out =
      counters_.state_bytes_out.load(std::memory_order_relaxed);
  return s;
}

void TcpTransport::deliver(Envelope env) {
  std::shared_ptr<DeliveryFn> handler;
  {
    const std::scoped_lock lock(endpoints_mu_);
    const auto it = endpoints_.find(env.dst);
    if (it != endpoints_.end()) handler = it->second;
  }
  if (!handler) {
    counters_.unrouted_drops.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  (*handler)(std::move(env));
}

// --------------------------------------------------------- event loop

void TcpTransport::loop_main() {
  using State = Peer::State;
  std::vector<epoll_event> events(128);
  std::vector<SharedBytes> frames;
  std::vector<Envelope> inbound;
  std::deque<Envelope> local;
  std::vector<Peer*> peer_scan;

  const auto fail_peer = [&](Peer& peer, Micros now) {
    if (peer.fd >= 0) {
      ::epoll_ctl(loop_->epoll_fd, EPOLL_CTL_DEL, peer.fd, nullptr);
      ::close(peer.fd);
      peer.fd = -1;
    }
    peer.state = State::Disconnected;
    {
      // A partially-written frame must restart at its boundary on the
      // replacement connection (the remote decoder starts fresh).
      const std::scoped_lock lock(mu_);
      peer.queue.rewind_front();
    }
    peer.backoff_us = peer.backoff_us == 0
                          ? options_.reconnect_backoff_min_us
                          : std::min(peer.backoff_us * 2,
                                     options_.reconnect_backoff_max_us);
    peer.retry_at = now + peer.backoff_us;
  };

  const auto on_connected = [&](Peer& peer) {
    peer.state = State::Connected;
    peer.retry_at = 0;
    peer.backoff_us = 0;
    counters_.connects.fetch_add(1, std::memory_order_relaxed);
    if (peer.ever_connected) {
      counters_.reconnects.fetch_add(1, std::memory_order_relaxed);
    }
    peer.ever_connected = true;
    std::memcpy(peer.preamble.data(), kMagic.data(), kMagic.size());
    for (int i = 0; i < 8; ++i) {
      peer.preamble[8 + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(static_cast<std::uint64_t>(self_) >>
                                    (8 * i));
    }
    peer.preamble_sent = 0;
  };

  // Flushes the peer's preamble then its queue with writev batching until
  // EAGAIN or empty. Returns false if the connection broke.
  const auto flush_peer = [&](Peer& peer) -> bool {
    while (peer.preamble_sent < kPreambleBytes) {
      const ssize_t w =
          ::send(peer.fd, peer.preamble.data() + peer.preamble_sent,
                 kPreambleBytes - peer.preamble_sent, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
        if (errno == EINTR) continue;
        return false;
      }
      peer.preamble_sent += static_cast<std::size_t>(w);
    }
    while (true) {
      iovec iov[kMaxSendIovecs];
      std::size_t count;
      {
        const std::scoped_lock lock(mu_);
        count = peer.queue.fill_iovecs(iov, kMaxSendIovecs);
      }
      if (count == 0) return true;
      // sendmsg == writev for the scatter-gather, but MSG_NOSIGNAL turns
      // a peer-closed pipe into EPIPE instead of a process-wide SIGPIPE.
      msghdr msg{};
      msg.msg_iov = iov;
      msg.msg_iovlen = count;
      const ssize_t w = ::sendmsg(peer.fd, &msg, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
        if (errno == EINTR) continue;
        return false;
      }
      counters_.writev_calls.fetch_add(1, std::memory_order_relaxed);
      counters_.bytes_out.fetch_add(static_cast<std::uint64_t>(w),
                                    std::memory_order_relaxed);
      std::size_t retired;
      {
        const std::scoped_lock lock(mu_);
        retired = peer.queue.advance(static_cast<std::size_t>(w));
      }
      counters_.frames_out.fetch_add(retired, std::memory_order_relaxed);
    }
  };

  const auto connect_peer = [&](Peer& peer, Micros now) {
    std::string peer_addr;
    {
      // add_peer may update the address concurrently (re-declaration).
      const std::scoped_lock lock(mu_);
      peer_addr = peer.addr;
    }
    Addr addr;
    std::string error;
    if (!Addr::parse(peer_addr, addr, error)) {
      // Unresolvable address: back off and retry (the operator may fix it;
      // meanwhile the queue applies backpressure).
      fail_peer(peer, now);
      return;
    }
    const int fd = ::socket(addr.uds ? AF_UNIX : AF_INET,
                            SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      fail_peer(peer, now);
      return;
    }
    set_nonblocking_nodelay(fd, !addr.uds);
    peer.fd = fd;
    const int rc =
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr.ss), addr.len);
    if (rc == 0) {
      peer.state = State::Connected;  // placeholder; on_connected finalizes
      on_connected(peer);
    } else if (errno == EINPROGRESS) {
      peer.state = State::Connecting;
    } else {
      fail_peer(peer, now);
      return;
    }
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT | EPOLLET;
    ev.data.u64 = tag(FdKind::PeerOut, peer.node, fd);
    ::epoll_ctl(loop_->epoll_fd, EPOLL_CTL_ADD, fd, &ev);
    if (peer.state == State::Connected && !flush_peer(peer)) {
      fail_peer(peer, now);
    }
  };

  const auto close_conn = [&](int fd) {
    ::epoll_ctl(loop_->epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    loop_->conns.erase(fd);
  };

  // Edge-triggered read until EAGAIN; decodes and dispatches. Returns
  // false when the connection is done (EOF/error/protocol violation).
  const auto read_conn = [&](Conn& conn) -> bool {
    while (true) {
      if (!conn.identified) {
        const ssize_t r =
            ::recv(conn.fd, conn.hello.data() + conn.hello_got,
                   kPreambleBytes - conn.hello_got, 0);
        if (r == 0) return false;
        if (r < 0) {
          if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
          if (errno == EINTR) continue;
          return false;
        }
        conn.hello_got += static_cast<std::size_t>(r);
        if (conn.hello_got < kPreambleBytes) continue;
        if (std::memcmp(conn.hello.data(), kMagic.data(), kMagic.size()) !=
            0) {
          counters_.decode_errors.fetch_add(1, std::memory_order_relaxed);
          return false;
        }
        conn.identified = true;
        continue;
      }
      const FrameDecoder::WriteArea area = conn.decoder.prepare();
      const ssize_t r = ::recv(conn.fd, area.data, area.size, 0);
      if (r == 0) return false;
      if (r < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
        if (errno == EINTR) continue;
        return false;
      }
      counters_.bytes_in.fetch_add(static_cast<std::uint64_t>(r),
                                   std::memory_order_relaxed);
      frames.clear();
      if (!conn.decoder.commit(static_cast<std::size_t>(r), frames)) {
        counters_.decode_errors.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      for (SharedBytes& frame : frames) {
        auto env = Envelope::from_frame(std::move(frame));
        if (!env) {
          counters_.decode_errors.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        counters_.frames_in.fetch_add(1, std::memory_order_relaxed);
        if (is_state_type(env->type)) {
          counters_.state_frames_in.fetch_add(1, std::memory_order_relaxed);
          counters_.state_bytes_in.fetch_add(env->wire().size(),
                                             std::memory_order_relaxed);
        }
        inbound.push_back(std::move(*env));
      }
    }
  };

  const auto accept_all = [&](Micros now) {
    loop_->accept_retry_at = 0;
    while (true) {
      const int fd = ::accept4(loop_->listen_fd, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // drained
        if (errno == EINTR || errno == ECONNABORTED) continue;
        // EMFILE/ENFILE-class failure: connections may still be queued in
        // the backlog, and edge-triggered EPOLLIN only fires again on a
        // brand-new dial. Schedule a timed retry so they drain once fds
        // free up instead of stalling indefinitely.
        loop_->accept_retry_at = now + options_.reconnect_backoff_min_us;
        return;
      }
      set_nonblocking_nodelay(fd, !loop_->listen_uds);
      counters_.accepts.fetch_add(1, std::memory_order_relaxed);
      loop_->conns.emplace(
          fd, std::make_unique<Conn>(fd, options_.max_frame_bytes,
                                     options_.read_chunk_bytes));
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLET;
      ev.data.u64 = tag(FdKind::ConnIn, 0, fd);
      ::epoll_ctl(loop_->epoll_fd, EPOLL_CTL_ADD, fd, &ev);
    }
  };

  while (running_.load(std::memory_order_relaxed)) {
    // Timeout: the earliest pending reconnect/accept-retry deadline, else
    // block.
    int timeout_ms = -1;
    {
      const Micros now = now_us();
      const auto consider = [&](Micros at) {
        const Micros wait_us = at > now ? at - now : 0;
        const int ms = static_cast<int>(wait_us / 1000) + 1;
        if (timeout_ms < 0 || ms < timeout_ms) timeout_ms = ms;
      };
      const std::scoped_lock lock(mu_);
      for (const auto& [node, peer] : peers_) {
        if (peer->state != State::Disconnected || peer->queue.empty()) {
          continue;
        }
        consider(peer->retry_at);
      }
      if (loop_->accept_retry_at != 0) consider(loop_->accept_retry_at);
    }

    const int n = ::epoll_wait(loop_->epoll_fd, events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    if (!running_.load(std::memory_order_relaxed)) break;
    const Micros now = now_us();

    if (loop_->accept_retry_at != 0 && now >= loop_->accept_retry_at) {
      accept_all(now);  // timed retry after an fd-exhaustion accept failure
    }

    for (int i = 0; i < n; ++i) {
      const std::uint64_t data = events[static_cast<std::size_t>(i)].data.u64;
      const auto kind = static_cast<FdKind>(data >> 56);
      const auto id = static_cast<std::uint32_t>((data >> 32) & 0xffffff);
      const int ev_fd = static_cast<int>(static_cast<std::uint32_t>(data));
      const std::uint32_t evs = events[static_cast<std::size_t>(i)].events;

      switch (kind) {
        case FdKind::Wake: {
          std::uint64_t drain;
          while (::read(loop_->wake_fd, &drain, sizeof(drain)) > 0) {
          }
          break;
        }
        case FdKind::Listen:
          accept_all(now);
          break;
        case FdKind::PeerOut: {
          Peer* peer_ptr = nullptr;
          {
            // add_peer() may insert (and rehash) concurrently; the map is
            // only read under mu_. Peers are never erased, so the Peer*
            // stays valid once the lock is dropped.
            const std::scoped_lock lock(mu_);
            const auto it = peers_.find(id);
            if (it != peers_.end()) peer_ptr = it->second.get();
          }
          if (peer_ptr == nullptr) break;
          Peer& peer = *peer_ptr;
          if (peer.fd != ev_fd) break;  // stale event for a replaced fd
          if (evs & (EPOLLERR | EPOLLHUP)) {
            fail_peer(peer, now);
            break;
          }
          if (peer.state == State::Connecting && (evs & EPOLLOUT)) {
            int err = 0;
            socklen_t elen = sizeof(err);
            ::getsockopt(peer.fd, SOL_SOCKET, SO_ERROR, &err, &elen);
            if (err != 0) {
              fail_peer(peer, now);
              break;
            }
            on_connected(peer);
          }
          if (evs & EPOLLIN) {
            // Egress-only socket: data is unexpected, EOF means the peer
            // closed — probe with a drain read.
            std::uint8_t sink[256];
            const ssize_t r = ::recv(peer.fd, sink, sizeof(sink), 0);
            if (r == 0 || (r < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                           errno != EINTR)) {
              fail_peer(peer, now);
              break;
            }
          }
          if (peer.state == State::Connected && !flush_peer(peer)) {
            fail_peer(peer, now);
          }
          break;
        }
        case FdKind::ConnIn: {
          const auto it = loop_->conns.find(ev_fd);
          if (it == loop_->conns.end()) break;
          if ((evs & (EPOLLERR | EPOLLHUP)) && !(evs & EPOLLIN)) {
            close_conn(ev_fd);
            break;
          }
          if (!read_conn(*it->second)) close_conn(ev_fd);
          break;
        }
      }
    }

    // Deliver ingress + local loopback outside of any lock.
    {
      const std::scoped_lock lock(mu_);
      local.swap(local_);
    }
    for (Envelope& env : local) deliver(std::move(env));
    local.clear();
    for (Envelope& env : inbound) deliver(std::move(env));
    inbound.clear();

    // Progress every peer: dial if due, flush if connected. Peer counts
    // are cluster-sized (n + loadgens), so the scan is trivial. The map is
    // snapshot under mu_ (add_peer may insert and rehash concurrently);
    // peers are never erased, so the Peer*s outlive the lock.
    peer_scan.clear();
    {
      const std::scoped_lock lock(mu_);
      for (auto& [node, peer_ptr] : peers_) {
        if (!peer_ptr->queue.empty()) peer_scan.push_back(peer_ptr.get());
      }
    }
    for (Peer* peer_ptr : peer_scan) {
      Peer& peer = *peer_ptr;
      if (peer.state == State::Disconnected && now >= peer.retry_at) {
        connect_peer(peer, now);
      } else if (peer.state == State::Connected && !flush_peer(peer)) {
        fail_peer(peer, now);
      }
    }
  }
}

}  // namespace sbft::net
