// Replicated ledger (the paper's "blockchain" workload).
//
// Transactions are opaque payloads. Every `block_size` transactions (5 in
// the paper) the app cuts a block — header: height, previous-block hash,
// transaction merkle-style digest — and pushes it to a BlockSink. In
// SplitBFT the sink is an ocall into the untrusted environment writing via
// the protected filesystem; in the PBFT baseline it is plain storage. That
// per-block exit is exactly the extra cost the paper measures for the
// blockchain application.
#pragma once

#include <functional>
#include <vector>

#include "apps/app.hpp"

namespace sbft::apps {

/// Receives serialized blocks as they are cut. Implementations decide where
/// they go (protected FS via ocall, plain file, memory).
using BlockSink = std::function<void(ByteView serialized_block)>;

struct Block {
  std::uint64_t height{0};
  Digest prev_hash;
  Digest tx_digest;
  std::vector<Bytes> transactions;

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<Block> deserialize(ByteView data);
  [[nodiscard]] Digest hash() const;
};

class Ledger final : public Application {
 public:
  /// `sink` may be empty (blocks are then only hashed into the chain).
  explicit Ledger(std::size_t block_size = 5, BlockSink sink = {});

  [[nodiscard]] Bytes execute(ByteView operation) override;
  [[nodiscard]] Bytes snapshot() const override;
  [[nodiscard]] bool restore(ByteView snapshot) override;
  [[nodiscard]] Digest state_digest() const override;

  [[nodiscard]] std::uint64_t height() const noexcept { return height_; }
  [[nodiscard]] std::size_t pending_transactions() const noexcept {
    return pending_.size();
  }
  [[nodiscard]] const Digest& head_hash() const noexcept { return head_hash_; }

 private:
  void cut_block();

  std::size_t block_size_;
  BlockSink sink_;
  std::uint64_t height_{0};
  std::uint64_t total_txs_{0};
  Digest head_hash_;  // hash of the latest block (zero at genesis)
  std::vector<Bytes> pending_;
};

/// Ledger reply payload: the assigned transaction sequence number and the
/// chain height at execution time.
struct LedgerReceipt {
  std::uint64_t tx_seq{0};
  std::uint64_t height{0};
  [[nodiscard]] static std::optional<LedgerReceipt> decode(ByteView data);
};

}  // namespace sbft::apps
