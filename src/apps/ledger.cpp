#include "apps/ledger.hpp"

#include "common/serde.hpp"
#include "crypto/sha256.hpp"

namespace sbft::apps {

Bytes Block::serialize() const {
  Writer w;
  w.u64(height);
  w.raw(prev_hash.view());
  w.raw(tx_digest.view());
  w.u32(static_cast<std::uint32_t>(transactions.size()));
  for (const auto& tx : transactions) w.bytes(tx);
  return std::move(w).take();
}

std::optional<Block> Block::deserialize(ByteView data) {
  Reader r(data);
  Block b;
  b.height = r.u64();
  const Bytes prev = r.raw(32);
  const Bytes txd = r.raw(32);
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n && !r.failed(); ++i) {
    b.transactions.push_back(r.bytes());
  }
  if (!r.done()) return std::nullopt;
  std::copy(prev.begin(), prev.end(), b.prev_hash.bytes.begin());
  std::copy(txd.begin(), txd.end(), b.tx_digest.bytes.begin());
  return b;
}

Digest Block::hash() const { return crypto::sha256(serialize()); }

Ledger::Ledger(std::size_t block_size, BlockSink sink)
    : block_size_(block_size == 0 ? 1 : block_size), sink_(std::move(sink)) {}

Bytes Ledger::execute(ByteView operation) {
  pending_.emplace_back(operation.begin(), operation.end());
  const std::uint64_t tx_seq = total_txs_++;
  if (pending_.size() >= block_size_) cut_block();

  Writer w;
  w.u64(tx_seq);
  w.u64(height_);
  return std::move(w).take();
}

void Ledger::cut_block() {
  Block block;
  block.height = height_ + 1;
  block.prev_hash = head_hash_;
  Writer txs;
  for (const auto& tx : pending_) txs.bytes(tx);
  block.tx_digest = crypto::sha256(txs.data());
  block.transactions = std::move(pending_);
  pending_.clear();

  const Bytes serialized = block.serialize();
  head_hash_ = crypto::sha256(serialized);
  height_ = block.height;
  if (sink_) sink_(serialized);
}

Bytes Ledger::snapshot() const {
  Writer w;
  w.u64(height_);
  w.u64(total_txs_);
  w.raw(head_hash_.view());
  w.u32(static_cast<std::uint32_t>(pending_.size()));
  for (const auto& tx : pending_) w.bytes(tx);
  return std::move(w).take();
}

bool Ledger::restore(ByteView snapshot) {
  Reader r(snapshot);
  const std::uint64_t height = r.u64();
  const std::uint64_t total = r.u64();
  const Bytes head = r.raw(32);
  const std::uint32_t n = r.u32();
  std::vector<Bytes> pending;
  for (std::uint32_t i = 0; i < n && !r.failed(); ++i) {
    pending.push_back(r.bytes());
  }
  if (!r.done()) return false;
  height_ = height;
  total_txs_ = total;
  std::copy(head.begin(), head.end(), head_hash_.bytes.begin());
  pending_ = std::move(pending);
  return true;
}

Digest Ledger::state_digest() const { return crypto::sha256(snapshot()); }

std::optional<LedgerReceipt> LedgerReceipt::decode(ByteView data) {
  Reader r(data);
  LedgerReceipt receipt;
  receipt.tx_seq = r.u64();
  receipt.height = r.u64();
  if (!r.done()) return std::nullopt;
  return receipt;
}

}  // namespace sbft::apps
