#include "apps/kv_store.hpp"

#include "common/serde.hpp"
#include "crypto/sha256.hpp"

namespace sbft::apps {

namespace kv {

namespace {
[[nodiscard]] Bytes encode_op(KvOp op, ByteView key, ByteView a, ByteView b) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(op));
  w.bytes(key);
  w.bytes(a);
  w.bytes(b);
  return std::move(w).take();
}
}  // namespace

Bytes encode_put(ByteView key, ByteView value) {
  return encode_op(KvOp::Put, key, value, {});
}
Bytes encode_key(std::uint64_t index) {
  Bytes key(8);
  for (int i = 0; i < 8; ++i) {
    key[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(index >> (8 * i));
  }
  return key;
}
Bytes encode_get(ByteView key) { return encode_op(KvOp::Get, key, {}, {}); }
Bytes encode_del(ByteView key) { return encode_op(KvOp::Del, key, {}, {}); }
Bytes encode_cas(ByteView key, ByteView expected, ByteView value) {
  return encode_op(KvOp::Cas, key, expected, value);
}

bool is_read_only(ByteView operation) {
  Reader r(operation);
  const auto op = static_cast<KvOp>(r.u8());
  const Bytes key = r.bytes();
  const Bytes a = r.bytes();
  const Bytes b = r.bytes();
  if (!r.done() || !a.empty() || !b.empty()) return false;
  (void)key;
  return op == KvOp::Get;
}

std::optional<Reply> decode_reply(ByteView data) {
  Reader r(data);
  Reply reply;
  reply.status = static_cast<KvStatus>(r.u8());
  reply.value = r.bytes();
  if (!r.done()) return std::nullopt;
  return reply;
}

}  // namespace kv

namespace {
[[nodiscard]] Bytes encode_reply(KvStatus status, ByteView value = {}) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(status));
  w.bytes(value);
  return std::move(w).take();
}
}  // namespace

Bytes KvStore::execute(ByteView operation) {
  Reader r(operation);
  const auto op = static_cast<KvOp>(r.u8());
  const Bytes key = r.bytes();
  const Bytes a = r.bytes();
  const Bytes b = r.bytes();
  if (!r.done()) return encode_reply(KvStatus::BadRequest);

  switch (op) {
    case KvOp::Put: {
      table_[key] = a;
      return encode_reply(KvStatus::Ok);
    }
    case KvOp::Get: {
      const auto it = table_.find(key);
      if (it == table_.end()) return encode_reply(KvStatus::NotFound);
      return encode_reply(KvStatus::Ok, it->second);
    }
    case KvOp::Del: {
      const auto erased = table_.erase(key);
      return encode_reply(erased > 0 ? KvStatus::Ok : KvStatus::NotFound);
    }
    case KvOp::Cas: {
      const auto it = table_.find(key);
      if (it == table_.end()) return encode_reply(KvStatus::NotFound);
      if (it->second != a) {
        return encode_reply(KvStatus::CasMismatch, it->second);
      }
      it->second = b;
      return encode_reply(KvStatus::Ok);
    }
  }
  return encode_reply(KvStatus::BadRequest);
}

bool KvStore::is_read_only(ByteView operation) const {
  return kv::is_read_only(operation);
}

Bytes KvStore::execute_read(ByteView operation) const {
  Reader r(operation);
  const auto op = static_cast<KvOp>(r.u8());
  const Bytes key = r.bytes();
  (void)r.bytes();
  (void)r.bytes();
  if (!r.done() || op != KvOp::Get) return encode_reply(KvStatus::BadRequest);
  const auto it = table_.find(key);
  if (it == table_.end()) return encode_reply(KvStatus::NotFound);
  return encode_reply(KvStatus::Ok, it->second);
}

Bytes KvStore::snapshot() const {
  Writer w;
  w.u64(table_.size());
  for (const auto& [key, value] : table_) {
    w.bytes(key);
    w.bytes(value);
  }
  return std::move(w).take();
}

bool KvStore::restore(ByteView snapshot) {
  Reader r(snapshot);
  const std::uint64_t count = r.u64();
  std::map<Bytes, Bytes> table;
  for (std::uint64_t i = 0; i < count && !r.failed(); ++i) {
    Bytes key = r.bytes();
    Bytes value = r.bytes();
    table.emplace(std::move(key), std::move(value));
  }
  if (!r.done()) return false;
  table_ = std::move(table);
  return true;
}

Digest KvStore::state_digest() const { return crypto::sha256(snapshot()); }

}  // namespace sbft::apps
