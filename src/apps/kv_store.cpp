#include "apps/kv_store.hpp"

#include <algorithm>

#include "common/serde.hpp"
#include "crypto/sha256.hpp"

namespace sbft::apps {

namespace kv {

namespace {
[[nodiscard]] Bytes encode_op(KvOp op, ByteView key, ByteView a, ByteView b) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(op));
  w.bytes(key);
  w.bytes(a);
  w.bytes(b);
  return std::move(w).take();
}

void write_subs(Writer& w, const std::vector<SubOp>& subs) {
  w.u32(static_cast<std::uint32_t>(subs.size()));
  for (const auto& sub : subs) {
    w.u8(static_cast<std::uint8_t>(sub.op));
    w.bytes(sub.key);
    w.bytes(sub.expected);
    w.bytes(sub.value);
  }
}

[[nodiscard]] bool read_subs(Reader& r, std::vector<SubOp>& subs) {
  const std::uint32_t count = r.u32();
  // Plausibility bound before any reserve: a hostile count must not
  // drive allocation.
  if (r.failed() || count == 0 || count > kMaxMultiSubs) return false;
  subs.reserve(count);
  for (std::uint32_t i = 0; i < count && !r.failed(); ++i) {
    SubOp sub;
    sub.op = static_cast<KvOp>(r.u8());
    sub.key = r.bytes();
    sub.expected = r.bytes();
    sub.value = r.bytes();
    if (sub.op != KvOp::Put && sub.op != KvOp::Cas && sub.op != KvOp::Del) {
      return false;
    }
    subs.push_back(std::move(sub));
  }
  return !r.failed();
}

void write_txid(Writer& w, TxId txid) {
  w.u64(txid.client);
  w.u64(txid.serial);
}

[[nodiscard]] TxId read_txid(Reader& r) {
  TxId txid;
  txid.client = r.u64();
  txid.serial = r.u64();
  return txid;
}

[[nodiscard]] Bytes encode_tx_ref(KvOp op, TxId txid) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(op));
  write_txid(w, txid);
  return std::move(w).take();
}
}  // namespace

Bytes encode_put(ByteView key, ByteView value) {
  return encode_op(KvOp::Put, key, value, {});
}
Bytes encode_key(std::uint64_t index) {
  Bytes key(8);
  for (int i = 0; i < 8; ++i) {
    key[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(index >> (8 * i));
  }
  return key;
}
Bytes encode_get(ByteView key) { return encode_op(KvOp::Get, key, {}, {}); }
Bytes encode_del(ByteView key) { return encode_op(KvOp::Del, key, {}, {}); }
Bytes encode_cas(ByteView key, ByteView expected, ByteView value) {
  return encode_op(KvOp::Cas, key, expected, value);
}

Bytes encode_multi(const MultiOp& multi) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(KvOp::Multi));
  write_subs(w, multi.subs);
  return std::move(w).take();
}

std::optional<MultiOp> decode_multi(ByteView operation) {
  Reader r(operation);
  if (static_cast<KvOp>(r.u8()) != KvOp::Multi || r.failed()) {
    return std::nullopt;
  }
  MultiOp multi;
  if (!read_subs(r, multi.subs) || !r.done()) return std::nullopt;
  return multi;
}

Bytes encode_tx_prepare(TxId txid, std::uint32_t home_shard, bool is_home,
                        std::uint32_t expiry_ops,
                        const std::vector<SubOp>& subs) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(KvOp::TxPrepare));
  write_txid(w, txid);
  w.u32(home_shard);
  w.boolean(is_home);
  w.u32(expiry_ops);
  write_subs(w, subs);
  return std::move(w).take();
}

Bytes encode_tx_commit(TxId txid) {
  return encode_tx_ref(KvOp::TxCommit, txid);
}
Bytes encode_tx_abort(TxId txid) { return encode_tx_ref(KvOp::TxAbort, txid); }
Bytes encode_tx_resolve(TxId txid) {
  return encode_tx_ref(KvOp::TxResolve, txid);
}

Bytes encode_busy_info(const BusyInfo& info) {
  Writer w;
  write_txid(w, info.blocker);
  w.u32(info.home_shard);
  return std::move(w).take();
}

std::optional<BusyInfo> decode_busy_info(ByteView data) {
  Reader r(data);
  BusyInfo info;
  info.blocker = read_txid(r);
  info.home_shard = r.u32();
  if (r.failed() || !r.done()) return std::nullopt;
  return info;
}

bool is_read_only(ByteView operation) {
  Reader r(operation);
  const auto op = static_cast<KvOp>(r.u8());
  const Bytes key = r.bytes();
  const Bytes a = r.bytes();
  const Bytes b = r.bytes();
  if (!r.done() || !a.empty() || !b.empty()) return false;
  (void)key;
  return op == KvOp::Get;
}

std::optional<Reply> decode_reply(ByteView data) {
  Reader r(data);
  Reply reply;
  reply.status = static_cast<KvStatus>(r.u8());
  reply.value = r.bytes();
  if (!r.done()) return std::nullopt;
  return reply;
}

Bytes encode_reply(KvStatus status, ByteView value) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(status));
  w.bytes(value);
  return std::move(w).take();
}

std::optional<ByteView> key_of(ByteView operation) {
  Reader r(operation);
  const auto op = static_cast<KvOp>(r.u8());
  if (r.failed()) return std::nullopt;
  if (op != KvOp::Put && op != KvOp::Get && op != KvOp::Del &&
      op != KvOp::Cas) {
    return std::nullopt;
  }
  const ByteView key = r.view(r.u32());
  if (r.failed()) return std::nullopt;
  r.skip(r.u32());
  r.skip(r.u32());
  if (r.failed() || !r.done()) return std::nullopt;
  return key;
}

std::uint32_t shard_of(ByteView key, std::uint32_t shards) {
  if (shards <= 1) return 0;
  // FNV-1a 64: tiny, deterministic, endian-free — the whole fleet (C++
  // replicas, loadgens, run_cluster.py) must compute the same partition.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t byte : key) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  }
  return static_cast<std::uint32_t>(h % shards);
}

OpKind classify(ByteView operation) {
  Reader r(operation);
  const auto op = static_cast<KvOp>(r.u8());
  if (r.failed()) return OpKind::Invalid;
  switch (op) {
    case KvOp::Put:
    case KvOp::Get:
    case KvOp::Del:
    case KvOp::Cas:
      return key_of(operation) ? OpKind::SingleKey : OpKind::Invalid;
    case KvOp::Multi:
      return OpKind::Multi;
    case KvOp::TxPrepare:
    case KvOp::TxCommit:
    case KvOp::TxAbort:
    case KvOp::TxResolve:
      return OpKind::Tx;
  }
  return OpKind::Invalid;
}

}  // namespace kv

namespace {
using kv::encode_reply;
}  // namespace

Bytes KvStore::execute(ByteView operation) {
  // The logical clock ticks once per ordered op and drives the home
  // shard's deterministic presumed-abort — replicas execute the same op
  // sequence, so they expire the same transactions at the same instant.
  ++exec_ops_;
  expire_pending();

  Reader r(operation);
  const auto op = static_cast<KvOp>(r.u8());
  if (r.failed()) return encode_reply(KvStatus::BadRequest);
  switch (op) {
    case KvOp::Put:
    case KvOp::Get:
    case KvOp::Del:
    case KvOp::Cas: {
      const Bytes key = r.bytes();
      const Bytes a = r.bytes();
      const Bytes b = r.bytes();
      if (r.failed() || !r.done()) return encode_reply(KvStatus::BadRequest);
      return exec_single(op, key, a, b);
    }
    case KvOp::Multi:
      return exec_multi(operation);
    case KvOp::TxPrepare:
      return exec_tx_prepare(operation);
    case KvOp::TxCommit:
    case KvOp::TxAbort:
      return exec_tx_decide(op, operation);
    case KvOp::TxResolve:
      return exec_tx_resolve(operation);
  }
  return encode_reply(KvStatus::BadRequest);
}

Bytes KvStore::exec_single(KvOp op, const Bytes& key, const Bytes& a,
                           const Bytes& b) {
  // Writes respect transaction locks (strict 2PL keeps cross-shard
  // batches serializable even against single-key traffic); reads are
  // lock-free read-committed.
  if (op != KvOp::Get) {
    if (auto busy = busy_check(key, std::nullopt)) return *std::move(busy);
  }
  switch (op) {
    case KvOp::Put:
      table_[key] = a;
      return encode_reply(KvStatus::Ok);
    case KvOp::Get: {
      const auto it = table_.find(key);
      if (it == table_.end()) return encode_reply(KvStatus::NotFound);
      return encode_reply(KvStatus::Ok, it->second);
    }
    case KvOp::Del: {
      const auto erased = table_.erase(key);
      return encode_reply(erased > 0 ? KvStatus::Ok : KvStatus::NotFound);
    }
    case KvOp::Cas: {
      const auto it = table_.find(key);
      if (it == table_.end()) return encode_reply(KvStatus::NotFound);
      if (it->second != a) {
        return encode_reply(KvStatus::CasMismatch, it->second);
      }
      it->second = b;
      return encode_reply(KvStatus::Ok);
    }
    default:
      return encode_reply(KvStatus::BadRequest);
  }
}

std::optional<Bytes> KvStore::busy_check(
    const Bytes& key, const std::optional<kv::TxId>& self) const {
  const auto lock = locks_.find(key);
  if (lock == locks_.end()) return std::nullopt;
  if (self && lock->second == *self) return std::nullopt;
  kv::BusyInfo info;
  info.blocker = lock->second;
  const auto pending = pending_.find(lock->second);
  info.home_shard =
      pending != pending_.end() ? pending->second.home_shard : 0;
  return encode_reply(KvStatus::TxBusy, kv::encode_busy_info(info));
}

Bytes KvStore::exec_multi(ByteView operation) {
  const auto multi = kv::decode_multi(operation);
  if (!multi) return encode_reply(KvStatus::BadRequest);
  // Validate everything, then apply everything: the batch is atomic.
  for (const auto& sub : multi->subs) {
    if (auto busy = busy_check(sub.key, std::nullopt)) return *std::move(busy);
  }
  for (const auto& sub : multi->subs) {
    if (sub.op != KvOp::Cas) continue;
    const auto it = table_.find(sub.key);
    if (it == table_.end()) return encode_reply(KvStatus::NotFound);
    if (it->second != sub.expected) {
      return encode_reply(KvStatus::CasMismatch, it->second);
    }
  }
  apply_subs(multi->subs);
  return encode_reply(KvStatus::Ok);
}

Bytes KvStore::exec_tx_prepare(ByteView operation) {
  Reader r(operation);
  (void)r.u8();
  const kv::TxId txid{r.u64(), r.u64()};
  const std::uint32_t home_shard = r.u32();
  const bool is_home = r.boolean();
  const std::uint32_t expiry_ops = r.u32();
  PendingTx tx;
  if (r.failed() || !kv::read_subs(r, tx.subs) || !r.done()) {
    return encode_reply(KvStatus::BadRequest);
  }
  // A decision (including a presumed abort already recorded for this
  // txid) outranks any late prepare.
  if (const auto decided = decision_of(txid)) {
    return encode_reply(*decided ? KvStatus::TxCommitted
                                 : KvStatus::TxAborted);
  }
  if (pending_.contains(txid)) return encode_reply(KvStatus::Ok);  // dup

  for (const auto& sub : tx.subs) {
    if (auto busy = busy_check(sub.key, txid)) return *std::move(busy);
  }
  // CAS validation happens at prepare time; the locks then freeze the
  // read values until the decision, so the vote stays truthful.
  for (const auto& sub : tx.subs) {
    if (sub.op != KvOp::Cas) continue;
    const auto it = table_.find(sub.key);
    if (it == table_.end()) return encode_reply(KvStatus::NotFound);
    if (it->second != sub.expected) {
      return encode_reply(KvStatus::CasMismatch, it->second);
    }
  }
  tx.home_shard = home_shard;
  tx.is_home = is_home;
  for (const auto& sub : tx.subs) locks_[sub.key] = txid;
  if (is_home) {
    tx.expires_at = exec_ops_ + std::max<std::uint32_t>(expiry_ops, 1);
    expiry_.emplace(tx.expires_at, txid);
  }
  pending_.emplace(txid, std::move(tx));
  return encode_reply(KvStatus::Ok);
}

Bytes KvStore::exec_tx_decide(KvOp op, ByteView operation) {
  Reader r(operation);
  (void)r.u8();
  const kv::TxId txid{r.u64(), r.u64()};
  if (r.failed() || !r.done()) return encode_reply(KvStatus::BadRequest);
  const bool commit = op == KvOp::TxCommit;
  if (const auto decided = decision_of(txid)) {
    // Idempotent replay: answer the recorded decision, never re-apply.
    // A commit after a recorded abort (home lease expired first) reports
    // TxAborted so the coordinator unwinds instead of tearing.
    return encode_reply(*decided ? KvStatus::TxCommitted
                                 : KvStatus::TxAborted);
  }
  const auto it = pending_.find(txid);
  if (it == pending_.end()) {
    if (commit) {
      // Commit for a transaction this shard never prepared (or already
      // presumed dead): refuse — committing would apply an unknown
      // write set.
      return encode_reply(KvStatus::BadRequest);
    }
    record_decision(txid, false);  // presumed abort is always safe
    return encode_reply(KvStatus::TxAborted);
  }
  if (commit) apply_subs(it->second.subs);
  release_tx(txid, it->second);
  pending_.erase(it);
  record_decision(txid, commit);
  return encode_reply(commit ? KvStatus::TxCommitted : KvStatus::TxAborted);
}

Bytes KvStore::exec_tx_resolve(ByteView operation) {
  Reader r(operation);
  (void)r.u8();
  const kv::TxId txid{r.u64(), r.u64()};
  if (r.failed() || !r.done()) return encode_reply(KvStatus::BadRequest);
  // expire_pending() already ran for this op, so a dead home lease has
  // been converted into an abort decision by now.
  if (const auto decided = decision_of(txid)) {
    return encode_reply(*decided ? KvStatus::TxCommitted
                                 : KvStatus::TxAborted);
  }
  if (pending_.contains(txid)) return encode_reply(KvStatus::TxUndecided);
  // Unknown at the decision authority: presumed abort, recorded so any
  // late prepare or commit for this txid is refused consistently.
  record_decision(txid, false);
  return encode_reply(KvStatus::TxAborted);
}

void KvStore::apply_subs(const std::vector<kv::SubOp>& subs) {
  for (const auto& sub : subs) {
    switch (sub.op) {
      case KvOp::Put:
      case KvOp::Cas:
        table_[sub.key] = sub.value;
        break;
      case KvOp::Del:
        table_.erase(sub.key);
        break;
      default:
        break;
    }
  }
}

void KvStore::release_tx(const kv::TxId& txid, const PendingTx& tx) {
  for (const auto& sub : tx.subs) {
    const auto lock = locks_.find(sub.key);
    if (lock != locks_.end() && lock->second == txid) locks_.erase(lock);
  }
  if (tx.is_home) {
    const auto [begin, end] = expiry_.equal_range(tx.expires_at);
    for (auto it = begin; it != end; ++it) {
      if (it->second == txid) {
        expiry_.erase(it);
        break;
      }
    }
  }
}

void KvStore::record_decision(const kv::TxId& txid, bool commit) {
  if (decision_cap_ == 0) return;
  if (!decisions_.emplace(txid, commit).second) return;
  decision_order_.push_back(txid);
  while (decision_order_.size() > decision_cap_) {
    decisions_.erase(decision_order_.front());
    decision_order_.pop_front();
  }
}

std::optional<bool> KvStore::decision_of(const kv::TxId& txid) const {
  const auto it = decisions_.find(txid);
  if (it == decisions_.end()) return std::nullopt;
  return it->second;
}

void KvStore::expire_pending() {
  while (!expiry_.empty() && expiry_.begin()->first <= exec_ops_) {
    const kv::TxId txid = expiry_.begin()->second;
    expiry_.erase(expiry_.begin());
    const auto it = pending_.find(txid);
    if (it == pending_.end()) continue;  // decided meanwhile
    for (const auto& sub : it->second.subs) {
      const auto lock = locks_.find(sub.key);
      if (lock != locks_.end() && lock->second == txid) locks_.erase(lock);
    }
    pending_.erase(it);
    record_decision(txid, false);
  }
}

KvStore::TxFootprint KvStore::tx_footprint() const noexcept {
  return TxFootprint{locks_.size(), pending_.size(), decisions_.size(),
                     expiry_.size()};
}

bool KvStore::is_read_only(ByteView operation) const {
  return kv::is_read_only(operation);
}

Bytes KvStore::execute_read(ByteView operation) const {
  Reader r(operation);
  const auto op = static_cast<KvOp>(r.u8());
  const Bytes key = r.bytes();
  (void)r.bytes();
  (void)r.bytes();
  if (!r.done() || op != KvOp::Get) return encode_reply(KvStatus::BadRequest);
  const auto it = table_.find(key);
  if (it == table_.end()) return encode_reply(KvStatus::NotFound);
  return encode_reply(KvStatus::Ok, it->second);
}

namespace {
// Tx-section framing marker. The section is appended after the KV
// records only when transaction state exists, so a store that never saw
// a transaction snapshots byte-identically to the pre-sharding format.
constexpr std::uint8_t kTxSectionTag = 1;
// Plausibility ceilings for snapshot decode, checked before any loop.
constexpr std::uint64_t kMaxSnapshotPending = 1u << 20;
constexpr std::uint64_t kMaxSnapshotDecisions = 1u << 20;
}  // namespace

void KvStore::serialize_tx_section(Writer& w) const {
  w.u8(kTxSectionTag);
  w.u32(static_cast<std::uint32_t>(pending_.size()));
  for (const auto& [txid, tx] : pending_) {
    w.u64(txid.client);
    w.u64(txid.serial);
    w.u32(tx.home_shard);
    w.boolean(tx.is_home);
    // Leases serialize as ops-remaining, not absolute exec_ops_ deadlines:
    // expiry only ever compares differences of the logical clock, and a
    // relative wire format keeps the state digest a pure function of the
    // application state (two replicas with equal tables and tx state must
    // digest equal regardless of how many ops each has executed).
    w.u64(tx.expires_at > exec_ops_ ? tx.expires_at - exec_ops_ : 0);
    kv::write_subs(w, tx.subs);
  }
  w.u32(static_cast<std::uint32_t>(decision_order_.size()));
  for (const auto& txid : decision_order_) {
    w.u64(txid.client);
    w.u64(txid.serial);
    w.boolean(decisions_.at(txid));
  }
}

bool KvStore::restore_tx_section(Reader& r) {
  if (static_cast<std::uint8_t>(r.u8()) != kTxSectionTag || r.failed()) {
    return false;
  }
  const std::uint32_t pending_count = r.u32();
  if (r.failed() || pending_count > kMaxSnapshotPending) return false;
  std::map<kv::TxId, PendingTx> pending;
  for (std::uint32_t i = 0; i < pending_count && !r.failed(); ++i) {
    const kv::TxId txid{r.u64(), r.u64()};
    PendingTx tx;
    tx.home_shard = r.u32();
    tx.is_home = r.boolean();
    // Wire carries ops-remaining; the restored replica's clock restarts at
    // zero, so the deadline is the remaining count itself and every replica
    // (restored or not) expires the lease after the same further ops.
    tx.expires_at = r.u64();
    if (!kv::read_subs(r, tx.subs)) return false;
    if (!pending.emplace(txid, std::move(tx)).second) return false;
  }
  const std::uint32_t decision_count = r.u32();
  if (r.failed() || decision_count > kMaxSnapshotDecisions) return false;
  std::map<kv::TxId, bool> decisions;
  std::deque<kv::TxId> decision_order;
  for (std::uint32_t i = 0; i < decision_count && !r.failed(); ++i) {
    const kv::TxId txid{r.u64(), r.u64()};
    const bool commit = r.boolean();
    if (!decisions.emplace(txid, commit).second) return false;
    decision_order.push_back(txid);
  }
  if (r.failed() || !r.done()) return false;
  exec_ops_ = 0;
  pending_ = std::move(pending);
  decisions_ = std::move(decisions);
  decision_order_ = std::move(decision_order);
  rebuild_tx_indexes();
  return true;
}

void KvStore::rebuild_tx_indexes() {
  locks_.clear();
  expiry_.clear();
  for (const auto& [txid, tx] : pending_) {
    for (const auto& sub : tx.subs) locks_[sub.key] = txid;
    if (tx.is_home) expiry_.emplace(tx.expires_at, txid);
  }
}

Bytes KvStore::snapshot() const {
  Writer w;
  w.u64(table_.size());
  for (const auto& [key, value] : table_) {
    w.bytes(key);
    w.bytes(value);
  }
  if (!pending_.empty() || !decision_order_.empty()) {
    serialize_tx_section(w);
  }
  return std::move(w).take();
}

bool KvStore::restore(ByteView snapshot) {
  Reader r(snapshot);
  const std::uint64_t count = r.u64();
  std::map<Bytes, Bytes> table;
  for (std::uint64_t i = 0; i < count && !r.failed(); ++i) {
    Bytes key = r.bytes();
    Bytes value = r.bytes();
    table.emplace(std::move(key), std::move(value));
  }
  if (r.failed()) return false;
  if (r.done()) {
    // Pre-sharding format: no tx section means no transaction state.
    table_ = std::move(table);
    exec_ops_ = 0;
    pending_.clear();
    decisions_.clear();
    decision_order_.clear();
    rebuild_tx_indexes();
    return true;
  }
  if (!restore_tx_section(r)) return false;
  table_ = std::move(table);
  return true;
}

Digest KvStore::state_digest() const { return crypto::sha256(snapshot()); }

void KvStore::snapshot_chunks(
    std::size_t chunk_bytes,
    const std::function<void(ByteView)>& sink) const {
  if (chunk_bytes == 0) chunk_bytes = 1;
  Bytes buf;
  buf.reserve(chunk_bytes * 2);
  const auto flush_full = [&] {
    std::size_t off = 0;
    while (buf.size() - off >= chunk_bytes) {
      sink(ByteView{buf.data() + off, chunk_bytes});
      off += chunk_bytes;
    }
    buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(off));
  };
  {
    Writer w;
    w.u64(table_.size());
    append(buf, w.data());
  }
  for (const auto& [key, value] : table_) {
    Writer w;
    w.bytes(key);
    w.bytes(value);
    append(buf, w.data());
    flush_full();
  }
  if (!pending_.empty() || !decision_order_.empty()) {
    Writer w;
    serialize_tx_section(w);
    append(buf, w.data());
    flush_full();
  }
  if (!buf.empty()) sink(buf);
}

void KvStore::apply_begin(std::uint64_t expected_bytes) {
  (void)expected_bytes;  // records are parsed as they stream in
  staging_table_.clear();
  apply_buf_.clear();
  apply_records_expected_ = 0;
  apply_records_seen_ = 0;
  apply_header_seen_ = false;
  apply_failed_ = false;
}

bool KvStore::apply_chunk(ByteView data) {
  if (apply_failed_) return false;
  append(apply_buf_, data);
  std::size_t off = 0;
  const auto read_u32 = [&](std::uint32_t& v) {
    if (apply_buf_.size() - off < 4) return false;
    v = static_cast<std::uint32_t>(apply_buf_[off]) |
        static_cast<std::uint32_t>(apply_buf_[off + 1]) << 8 |
        static_cast<std::uint32_t>(apply_buf_[off + 2]) << 16 |
        static_cast<std::uint32_t>(apply_buf_[off + 3]) << 24;
    off += 4;
    return true;
  };
  if (!apply_header_seen_) {
    if (apply_buf_.size() < 8) return true;  // wait for the count header
    for (int i = 0; i < 8; ++i) {
      apply_records_expected_ |= static_cast<std::uint64_t>(apply_buf_[off])
                                 << (8 * i);
      ++off;
    }
    apply_header_seen_ = true;
  }
  // Parse complete key/value records greedily; a partial record stays
  // buffered until the next chunk completes it, so resident overhead is
  // one record + one chunk, never the whole snapshot.
  while (apply_records_seen_ < apply_records_expected_) {
    const std::size_t mark = off;
    std::uint32_t klen = 0;
    if (!read_u32(klen) || apply_buf_.size() - off < klen) {
      off = mark;
      break;
    }
    const std::size_t key_at = off;
    off += klen;
    std::uint32_t vlen = 0;
    if (!read_u32(vlen) || apply_buf_.size() - off < vlen) {
      off = mark;
      break;
    }
    Bytes key(apply_buf_.begin() + static_cast<std::ptrdiff_t>(key_at),
              apply_buf_.begin() + static_cast<std::ptrdiff_t>(key_at + klen));
    Bytes value(apply_buf_.begin() + static_cast<std::ptrdiff_t>(off),
                apply_buf_.begin() + static_cast<std::ptrdiff_t>(off + vlen));
    off += vlen;
    // Snapshots are emitted from an ordered map: out-of-order or duplicate
    // keys mean corrupt input.
    if (!staging_table_.empty() && !(staging_table_.rbegin()->first < key)) {
      apply_failed_ = true;
      return false;
    }
    staging_table_.emplace_hint(staging_table_.end(), std::move(key),
                                std::move(value));
    ++apply_records_seen_;
  }
  apply_buf_.erase(apply_buf_.begin(), apply_buf_.begin() +
                                           static_cast<std::ptrdiff_t>(off));
  // Bytes past the final record are the transaction section; it is small
  // (bounded by the pending/decision caps), so buffering it until
  // apply_end keeps the streaming-memory story intact.
  return true;
}

bool KvStore::apply_end() {
  if (apply_failed_ || !apply_header_seen_ ||
      apply_records_seen_ != apply_records_expected_) {
    apply_abort();
    return false;
  }
  std::uint64_t exec_ops = 0;
  std::map<kv::TxId, PendingTx> pending;
  std::map<kv::TxId, bool> decisions;
  std::deque<kv::TxId> decision_order;
  if (!apply_buf_.empty()) {
    // Trailing bytes must parse as a well-formed tx section; reuse the
    // materialized parser on a throwaway store state via restore_tx_section
    // semantics, but without clobbering live state on failure.
    Reader r(apply_buf_);
    KvStore scratch;
    if (!scratch.restore_tx_section(r)) {
      apply_abort();
      return false;
    }
    exec_ops = scratch.exec_ops_;
    pending = std::move(scratch.pending_);
    decisions = std::move(scratch.decisions_);
    decision_order = std::move(scratch.decision_order_);
  }
  table_ = std::move(staging_table_);
  exec_ops_ = exec_ops;
  pending_ = std::move(pending);
  decisions_ = std::move(decisions);
  decision_order_ = std::move(decision_order);
  rebuild_tx_indexes();
  apply_abort();
  return true;
}

void KvStore::apply_abort() {
  staging_table_.clear();
  apply_buf_.clear();
  apply_records_expected_ = 0;
  apply_records_seen_ = 0;
  apply_header_seen_ = false;
  apply_failed_ = true;
}

}  // namespace sbft::apps
