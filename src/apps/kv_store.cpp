#include "apps/kv_store.hpp"

#include "common/serde.hpp"
#include "crypto/sha256.hpp"

namespace sbft::apps {

namespace kv {

namespace {
[[nodiscard]] Bytes encode_op(KvOp op, ByteView key, ByteView a, ByteView b) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(op));
  w.bytes(key);
  w.bytes(a);
  w.bytes(b);
  return std::move(w).take();
}
}  // namespace

Bytes encode_put(ByteView key, ByteView value) {
  return encode_op(KvOp::Put, key, value, {});
}
Bytes encode_key(std::uint64_t index) {
  Bytes key(8);
  for (int i = 0; i < 8; ++i) {
    key[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(index >> (8 * i));
  }
  return key;
}
Bytes encode_get(ByteView key) { return encode_op(KvOp::Get, key, {}, {}); }
Bytes encode_del(ByteView key) { return encode_op(KvOp::Del, key, {}, {}); }
Bytes encode_cas(ByteView key, ByteView expected, ByteView value) {
  return encode_op(KvOp::Cas, key, expected, value);
}

bool is_read_only(ByteView operation) {
  Reader r(operation);
  const auto op = static_cast<KvOp>(r.u8());
  const Bytes key = r.bytes();
  const Bytes a = r.bytes();
  const Bytes b = r.bytes();
  if (!r.done() || !a.empty() || !b.empty()) return false;
  (void)key;
  return op == KvOp::Get;
}

std::optional<Reply> decode_reply(ByteView data) {
  Reader r(data);
  Reply reply;
  reply.status = static_cast<KvStatus>(r.u8());
  reply.value = r.bytes();
  if (!r.done()) return std::nullopt;
  return reply;
}

}  // namespace kv

namespace {
[[nodiscard]] Bytes encode_reply(KvStatus status, ByteView value = {}) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(status));
  w.bytes(value);
  return std::move(w).take();
}
}  // namespace

Bytes KvStore::execute(ByteView operation) {
  Reader r(operation);
  const auto op = static_cast<KvOp>(r.u8());
  const Bytes key = r.bytes();
  const Bytes a = r.bytes();
  const Bytes b = r.bytes();
  if (!r.done()) return encode_reply(KvStatus::BadRequest);

  switch (op) {
    case KvOp::Put: {
      table_[key] = a;
      return encode_reply(KvStatus::Ok);
    }
    case KvOp::Get: {
      const auto it = table_.find(key);
      if (it == table_.end()) return encode_reply(KvStatus::NotFound);
      return encode_reply(KvStatus::Ok, it->second);
    }
    case KvOp::Del: {
      const auto erased = table_.erase(key);
      return encode_reply(erased > 0 ? KvStatus::Ok : KvStatus::NotFound);
    }
    case KvOp::Cas: {
      const auto it = table_.find(key);
      if (it == table_.end()) return encode_reply(KvStatus::NotFound);
      if (it->second != a) {
        return encode_reply(KvStatus::CasMismatch, it->second);
      }
      it->second = b;
      return encode_reply(KvStatus::Ok);
    }
  }
  return encode_reply(KvStatus::BadRequest);
}

bool KvStore::is_read_only(ByteView operation) const {
  return kv::is_read_only(operation);
}

Bytes KvStore::execute_read(ByteView operation) const {
  Reader r(operation);
  const auto op = static_cast<KvOp>(r.u8());
  const Bytes key = r.bytes();
  (void)r.bytes();
  (void)r.bytes();
  if (!r.done() || op != KvOp::Get) return encode_reply(KvStatus::BadRequest);
  const auto it = table_.find(key);
  if (it == table_.end()) return encode_reply(KvStatus::NotFound);
  return encode_reply(KvStatus::Ok, it->second);
}

Bytes KvStore::snapshot() const {
  Writer w;
  w.u64(table_.size());
  for (const auto& [key, value] : table_) {
    w.bytes(key);
    w.bytes(value);
  }
  return std::move(w).take();
}

bool KvStore::restore(ByteView snapshot) {
  Reader r(snapshot);
  const std::uint64_t count = r.u64();
  std::map<Bytes, Bytes> table;
  for (std::uint64_t i = 0; i < count && !r.failed(); ++i) {
    Bytes key = r.bytes();
    Bytes value = r.bytes();
    table.emplace(std::move(key), std::move(value));
  }
  if (!r.done()) return false;
  table_ = std::move(table);
  return true;
}

Digest KvStore::state_digest() const { return crypto::sha256(snapshot()); }

void KvStore::snapshot_chunks(
    std::size_t chunk_bytes,
    const std::function<void(ByteView)>& sink) const {
  if (chunk_bytes == 0) chunk_bytes = 1;
  Bytes buf;
  buf.reserve(chunk_bytes * 2);
  const auto flush_full = [&] {
    std::size_t off = 0;
    while (buf.size() - off >= chunk_bytes) {
      sink(ByteView{buf.data() + off, chunk_bytes});
      off += chunk_bytes;
    }
    buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(off));
  };
  {
    Writer w;
    w.u64(table_.size());
    append(buf, w.data());
  }
  for (const auto& [key, value] : table_) {
    Writer w;
    w.bytes(key);
    w.bytes(value);
    append(buf, w.data());
    flush_full();
  }
  if (!buf.empty()) sink(buf);
}

void KvStore::apply_begin(std::uint64_t expected_bytes) {
  (void)expected_bytes;  // records are parsed as they stream in
  staging_table_.clear();
  apply_buf_.clear();
  apply_records_expected_ = 0;
  apply_records_seen_ = 0;
  apply_header_seen_ = false;
  apply_failed_ = false;
}

bool KvStore::apply_chunk(ByteView data) {
  if (apply_failed_) return false;
  append(apply_buf_, data);
  std::size_t off = 0;
  const auto read_u32 = [&](std::uint32_t& v) {
    if (apply_buf_.size() - off < 4) return false;
    v = static_cast<std::uint32_t>(apply_buf_[off]) |
        static_cast<std::uint32_t>(apply_buf_[off + 1]) << 8 |
        static_cast<std::uint32_t>(apply_buf_[off + 2]) << 16 |
        static_cast<std::uint32_t>(apply_buf_[off + 3]) << 24;
    off += 4;
    return true;
  };
  if (!apply_header_seen_) {
    if (apply_buf_.size() < 8) return true;  // wait for the count header
    for (int i = 0; i < 8; ++i) {
      apply_records_expected_ |= static_cast<std::uint64_t>(apply_buf_[off])
                                 << (8 * i);
      ++off;
    }
    apply_header_seen_ = true;
  }
  // Parse complete key/value records greedily; a partial record stays
  // buffered until the next chunk completes it, so resident overhead is
  // one record + one chunk, never the whole snapshot.
  while (apply_records_seen_ < apply_records_expected_) {
    const std::size_t mark = off;
    std::uint32_t klen = 0;
    if (!read_u32(klen) || apply_buf_.size() - off < klen) {
      off = mark;
      break;
    }
    const std::size_t key_at = off;
    off += klen;
    std::uint32_t vlen = 0;
    if (!read_u32(vlen) || apply_buf_.size() - off < vlen) {
      off = mark;
      break;
    }
    Bytes key(apply_buf_.begin() + static_cast<std::ptrdiff_t>(key_at),
              apply_buf_.begin() + static_cast<std::ptrdiff_t>(key_at + klen));
    Bytes value(apply_buf_.begin() + static_cast<std::ptrdiff_t>(off),
                apply_buf_.begin() + static_cast<std::ptrdiff_t>(off + vlen));
    off += vlen;
    // Snapshots are emitted from an ordered map: out-of-order or duplicate
    // keys mean corrupt input.
    if (!staging_table_.empty() && !(staging_table_.rbegin()->first < key)) {
      apply_failed_ = true;
      return false;
    }
    staging_table_.emplace_hint(staging_table_.end(), std::move(key),
                                std::move(value));
    ++apply_records_seen_;
  }
  apply_buf_.erase(apply_buf_.begin(), apply_buf_.begin() +
                                           static_cast<std::ptrdiff_t>(off));
  // Bytes past the final record are framing garbage.
  if (apply_records_seen_ == apply_records_expected_ && !apply_buf_.empty()) {
    apply_failed_ = true;
    return false;
  }
  return true;
}

bool KvStore::apply_end() {
  if (apply_failed_ || !apply_header_seen_ || !apply_buf_.empty() ||
      apply_records_seen_ != apply_records_expected_) {
    apply_abort();
    return false;
  }
  table_ = std::move(staging_table_);
  apply_abort();
  return true;
}

void KvStore::apply_abort() {
  staging_table_.clear();
  apply_buf_.clear();
  apply_records_expected_ = 0;
  apply_records_seen_ = 0;
  apply_header_seen_ = false;
  apply_failed_ = true;
}

}  // namespace sbft::apps
