// Replicated key-value store — the paper's primary evaluation workload.
//
// Operations are serialized with the project codec; `kv::` helpers build
// and parse them so clients, tests and workload generators share one format.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "apps/app.hpp"

namespace sbft::apps {

enum class KvOp : std::uint8_t { Put = 1, Get = 2, Del = 3, Cas = 4 };
enum class KvStatus : std::uint8_t {
  Ok = 0,
  NotFound = 1,
  CasMismatch = 2,
  BadRequest = 3,
};

namespace kv {

[[nodiscard]] Bytes encode_put(ByteView key, ByteView value);
[[nodiscard]] Bytes encode_get(ByteView key);
/// Canonical fixed-width key for synthetic workloads: the 8-byte
/// little-endian encoding of a key index, so load generators, tests and
/// debugging tools agree on the key-space layout.
[[nodiscard]] Bytes encode_key(std::uint64_t index);
[[nodiscard]] Bytes encode_del(ByteView key);
/// Compare-and-swap: writes `value` only if the current value == expected.
[[nodiscard]] Bytes encode_cas(ByteView key, ByteView expected, ByteView value);

struct Reply {
  KvStatus status{KvStatus::BadRequest};
  Bytes value;  // previous/current value where applicable
};
[[nodiscard]] std::optional<Reply> decode_reply(ByteView data);

/// True iff `operation` is a well-formed read-only KV op (currently: Get).
/// Shared by the KvStore itself and load generators that must tag the
/// requests they emit for the read fast path.
[[nodiscard]] bool is_read_only(ByteView operation);

}  // namespace kv

class KvStore final : public Application {
 public:
  [[nodiscard]] Bytes execute(ByteView operation) override;
  [[nodiscard]] bool is_read_only(ByteView operation) const override;
  [[nodiscard]] Bytes execute_read(ByteView operation) const override;
  [[nodiscard]] Bytes snapshot() const override;
  [[nodiscard]] bool restore(ByteView snapshot) override;
  [[nodiscard]] Digest state_digest() const override;

  // Streaming snapshot/restore: neither direction materializes the full
  // snapshot. Emission serializes record by record through a chunk-sized
  // buffer; application parses records as chunks arrive into a staging
  // table that swaps in atomically at apply_end (an aborted half-restore
  // never corrupts the live table).
  void snapshot_chunks(
      std::size_t chunk_bytes,
      const std::function<void(ByteView)>& sink) const override;
  void apply_begin(std::uint64_t expected_bytes) override;
  [[nodiscard]] bool apply_chunk(ByteView data) override;
  [[nodiscard]] bool apply_end() override;
  void apply_abort() override;

  [[nodiscard]] std::size_t size() const noexcept { return table_.size(); }

 private:
  // std::map keeps keys ordered so snapshots/digests are canonical.
  std::map<Bytes, Bytes> table_;

  // Incremental-restore staging (live only between apply_begin/apply_end).
  std::map<Bytes, Bytes> staging_table_;
  Bytes apply_buf_;  // unconsumed partial-record bytes
  std::uint64_t apply_records_expected_{0};
  std::uint64_t apply_records_seen_{0};
  bool apply_header_seen_{false};
  bool apply_failed_{true};
};

}  // namespace sbft::apps
