// Replicated key-value store — the paper's primary evaluation workload.
//
// Operations are serialized with the project codec; `kv::` helpers build
// and parse them so clients, tests and workload generators share one format.
//
// Beyond the classic single-key ops the store is a 2PC *participant* for
// cross-shard transactions (PR 9). Prepare/commit/abort records arrive as
// ordered ops like any other request, so every phase of a transaction is
// BFT-replicated inside its shard and survives replica recovery via the
// snapshot/state-transfer path:
//
//  * `TxPrepare` validates the sub-ops (CAS expectations), acquires
//    per-key locks and parks the write set in a pending table. The shard
//    flagged `is_home` is the *decision authority*: only it may later
//    presume-abort the transaction, driven by a deterministic logical
//    clock (executed-op count), so a crashed coordinator cannot wedge a
//    shard and replicas never disagree about an expiry.
//  * `TxCommit` / `TxAbort` apply or discard the pending write set and
//    record the decision in a FIFO-capped table, making retransmitted or
//    replayed decisions idempotent.
//  * `TxResolve` is the termination protocol: it answers with the
//    recorded decision, reports `TxUndecided` while the home lease is
//    live, and records a presumed-abort for unknown transactions.
//
// Locks block conflicting *writes* (single-key or transactional) with a
// `TxBusy` reply naming the blocker and its home shard, which is exactly
// what a recovery client needs to drive `TxResolve`. Reads stay
// lock-free (read-committed) so the PR-5 read fast path is untouched.
#pragma once

#include <compare>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "common/serde.hpp"

namespace sbft::apps {

enum class KvOp : std::uint8_t {
  Put = 1,
  Get = 2,
  Del = 3,
  Cas = 4,
  // Sharded/transactional ops (PR 9).
  Multi = 5,      // atomic multi-key batch, single shard
  TxPrepare = 6,  // 2PC phase 1: validate + lock + park write set
  TxCommit = 7,   // 2PC phase 2: apply pending write set
  TxAbort = 8,    // 2PC phase 2: discard pending write set
  TxResolve = 9,  // termination protocol against the home shard
};
enum class KvStatus : std::uint8_t {
  Ok = 0,
  NotFound = 1,
  CasMismatch = 2,
  BadRequest = 3,
  TxBusy = 4,       // key locked by another transaction (blocker in value)
  TxCommitted = 5,  // decision record: committed
  TxAborted = 6,    // decision record: aborted
  TxUndecided = 7,  // home lease still live; retry resolve later
};

namespace kv {

/// Transaction id: issuing client + per-client serial. Globally unique
/// because client ids are.
struct TxId {
  std::uint64_t client{0};
  std::uint64_t serial{0};
  auto operator<=>(const TxId&) const = default;
};

/// One sub-operation of a multi-key batch. `expected` is only meaningful
/// for Cas (compare-and-swap against the current value).
struct SubOp {
  KvOp op{KvOp::Put};
  Bytes key;
  Bytes expected;
  Bytes value;
  auto operator<=>(const SubOp&) const = default;
};

/// Multi-key batch: applied atomically. Single-shard batches execute as
/// one ordered `Multi` op; cross-shard batches are split into per-shard
/// `TxPrepare` write sets by the router's 2PC coordinator.
struct MultiOp {
  std::vector<SubOp> subs;
};

/// Plausibility ceiling on sub-ops per batch, checked before any reserve.
inline constexpr std::size_t kMaxMultiSubs = 64;

[[nodiscard]] Bytes encode_put(ByteView key, ByteView value);
[[nodiscard]] Bytes encode_get(ByteView key);
/// Canonical fixed-width key for synthetic workloads: the 8-byte
/// little-endian encoding of a key index, so load generators, tests and
/// debugging tools agree on the key-space layout.
[[nodiscard]] Bytes encode_key(std::uint64_t index);
[[nodiscard]] Bytes encode_del(ByteView key);
/// Compare-and-swap: writes `value` only if the current value == expected.
[[nodiscard]] Bytes encode_cas(ByteView key, ByteView expected, ByteView value);

[[nodiscard]] Bytes encode_multi(const MultiOp& multi);
[[nodiscard]] std::optional<MultiOp> decode_multi(ByteView operation);

[[nodiscard]] Bytes encode_tx_prepare(TxId txid, std::uint32_t home_shard,
                                      bool is_home, std::uint32_t expiry_ops,
                                      const std::vector<SubOp>& subs);
[[nodiscard]] Bytes encode_tx_commit(TxId txid);
[[nodiscard]] Bytes encode_tx_abort(TxId txid);
[[nodiscard]] Bytes encode_tx_resolve(TxId txid);

/// Payload of a `TxBusy` reply: who holds the lock and where to resolve.
struct BusyInfo {
  TxId blocker;
  std::uint32_t home_shard{0};
};
[[nodiscard]] Bytes encode_busy_info(const BusyInfo& info);
[[nodiscard]] std::optional<BusyInfo> decode_busy_info(ByteView data);

struct Reply {
  KvStatus status{KvStatus::BadRequest};
  Bytes value;  // previous/current value where applicable
};
[[nodiscard]] std::optional<Reply> decode_reply(ByteView data);
[[nodiscard]] Bytes encode_reply(KvStatus status, ByteView value = {});

/// The key a well-formed single-key op (Put/Get/Del/Cas) addresses, as a
/// view into `operation`. nullopt for batches, tx records and garbage —
/// callers route those separately.
[[nodiscard]] std::optional<ByteView> key_of(ByteView operation);

/// Deterministic hash partition of the keyspace (FNV-1a 64). Every
/// client, replica and tool must agree on this map, so it is a pure
/// function of the bytes and the shard count.
[[nodiscard]] std::uint32_t shard_of(ByteView key, std::uint32_t shards);

/// Coarse op classification for routers.
enum class OpKind : std::uint8_t { SingleKey, Multi, Tx, Invalid };
[[nodiscard]] OpKind classify(ByteView operation);

/// True iff `operation` is a well-formed read-only KV op (currently: Get).
/// Shared by the KvStore itself and load generators that must tag the
/// requests they emit for the read fast path.
[[nodiscard]] bool is_read_only(ByteView operation);

}  // namespace kv

class KvStore final : public Application {
 public:
  [[nodiscard]] Bytes execute(ByteView operation) override;
  [[nodiscard]] bool is_read_only(ByteView operation) const override;
  [[nodiscard]] Bytes execute_read(ByteView operation) const override;
  [[nodiscard]] Bytes snapshot() const override;
  [[nodiscard]] bool restore(ByteView snapshot) override;
  [[nodiscard]] Digest state_digest() const override;

  // Streaming snapshot/restore: neither direction materializes the full
  // snapshot. Emission serializes record by record through a chunk-sized
  // buffer; application parses records as chunks arrive into a staging
  // table that swaps in atomically at apply_end (an aborted half-restore
  // never corrupts the live table). Bytes past the final KV record are
  // the transaction section (parsed at apply_end), absent when there is
  // no transaction state — the pre-sharding byte format.
  void snapshot_chunks(
      std::size_t chunk_bytes,
      const std::function<void(ByteView)>& sink) const override;
  void apply_begin(std::uint64_t expected_bytes) override;
  [[nodiscard]] bool apply_chunk(ByteView data) override;
  [[nodiscard]] bool apply_end() override;
  void apply_abort() override;

  [[nodiscard]] std::size_t size() const noexcept { return table_.size(); }

  /// Everything the 2PC participant keeps alive, for GC bounds tests: a
  /// committed or aborted transaction must free its locks, pending entry
  /// and (home only) expiry-queue entry; decisions stay bounded by the
  /// FIFO cap.
  struct TxFootprint {
    std::size_t locks{0};
    std::size_t pending{0};
    std::size_t decisions{0};
    std::size_t expiry_entries{0};
  };
  [[nodiscard]] TxFootprint tx_footprint() const noexcept;

  /// Decision-record FIFO cap (oldest evicted first; deterministic).
  void set_decision_cap(std::size_t cap) noexcept { decision_cap_ = cap; }
  [[nodiscard]] std::uint64_t executed_ops() const noexcept {
    return exec_ops_;
  }

 private:
  struct PendingTx {
    std::vector<kv::SubOp> subs;
    std::uint32_t home_shard{0};
    bool is_home{false};
    std::uint64_t expires_at{0};  // exec_ops_ deadline, home only
  };

  [[nodiscard]] Bytes exec_single(KvOp op, const Bytes& key, const Bytes& a,
                                  const Bytes& b);
  [[nodiscard]] Bytes exec_multi(ByteView operation);
  [[nodiscard]] Bytes exec_tx_prepare(ByteView operation);
  [[nodiscard]] Bytes exec_tx_decide(KvOp op, ByteView operation);
  [[nodiscard]] Bytes exec_tx_resolve(ByteView operation);

  /// First lock conflicting with `key` held by a transaction other than
  /// `self`, as a TxBusy reply; nullopt when free.
  [[nodiscard]] std::optional<Bytes> busy_check(
      const Bytes& key, const std::optional<kv::TxId>& self) const;
  void apply_subs(const std::vector<kv::SubOp>& subs);
  void release_tx(const kv::TxId& txid, const PendingTx& tx);
  void record_decision(const kv::TxId& txid, bool commit);
  [[nodiscard]] std::optional<bool> decision_of(const kv::TxId& txid) const;
  /// Deterministic presumed-abort of expired home-lease transactions;
  /// runs at the top of every ordered op.
  void expire_pending();

  void serialize_tx_section(Writer& w) const;
  [[nodiscard]] bool restore_tx_section(Reader& r);
  void rebuild_tx_indexes();

  // std::map keeps keys ordered so snapshots/digests are canonical.
  std::map<Bytes, Bytes> table_;

  // 2PC participant state. All of it is covered by snapshot() /
  // state_digest() — recovered replicas must agree on locks and pending
  // transactions, not just the KV table.
  std::uint64_t exec_ops_{0};  // deterministic logical clock
  std::map<kv::TxId, PendingTx> pending_;
  std::map<Bytes, kv::TxId> locks_;                    // rebuilt on restore
  std::multimap<std::uint64_t, kv::TxId> expiry_;      // rebuilt on restore
  std::map<kv::TxId, bool> decisions_;                 // txid -> committed?
  std::deque<kv::TxId> decision_order_;                // FIFO for eviction
  std::size_t decision_cap_{4096};

  // Incremental-restore staging (live only between apply_begin/apply_end).
  std::map<Bytes, Bytes> staging_table_;
  Bytes apply_buf_;  // unconsumed partial-record bytes
  std::uint64_t apply_records_expected_{0};
  std::uint64_t apply_records_seen_{0};
  bool apply_header_seen_{false};
  bool apply_failed_{true};
};

}  // namespace sbft::apps
