// Trivial deterministic app used by protocol tests: a single integer the
// clients add to; replies return the post-operation value, making
// linearization checks straightforward.
#pragma once

#include "apps/app.hpp"
#include "common/serde.hpp"
#include "crypto/sha256.hpp"

namespace sbft::apps {

class CounterApp final : public Application {
 public:
  [[nodiscard]] Bytes execute(ByteView operation) override {
    Reader r(operation);
    const std::uint64_t delta = r.u64();
    if (!r.done()) {
      Writer w;
      w.u64(value_);
      w.boolean(false);
      return std::move(w).take();
    }
    value_ += delta;
    Writer w;
    w.u64(value_);
    w.boolean(true);
    return std::move(w).take();
  }

  [[nodiscard]] Bytes snapshot() const override {
    Writer w;
    w.u64(value_);
    return std::move(w).take();
  }

  [[nodiscard]] bool restore(ByteView snapshot) override {
    Reader r(snapshot);
    const std::uint64_t v = r.u64();
    if (!r.done()) return false;
    value_ = v;
    return true;
  }

  [[nodiscard]] Digest state_digest() const override {
    return crypto::sha256(snapshot());
  }

  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

  [[nodiscard]] static Bytes encode_add(std::uint64_t delta) {
    Writer w;
    w.u64(delta);
    return std::move(w).take();
  }

 private:
  std::uint64_t value_{0};
};

}  // namespace sbft::apps
