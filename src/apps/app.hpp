// Replicated application interface.
//
// Instances run inside the Execution compartment (SplitBFT) or the replica
// process (PBFT baseline). Implementations must be deterministic: the same
// operation sequence yields the same state and replies on every replica.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>

#include "common/bytes.hpp"

namespace sbft::apps {

class Application {
 public:
  virtual ~Application() = default;

  /// Executes one client operation and returns the reply payload.
  [[nodiscard]] virtual Bytes execute(ByteView operation) = 0;

  /// True iff `operation` never mutates state, making it eligible for the
  /// single-round read fast path (served via execute_read against the
  /// replica's last-executed state, bypassing ordering). Default: nothing
  /// is read-only, so apps opt in per operation.
  [[nodiscard]] virtual bool is_read_only(ByteView operation) const {
    (void)operation;
    return false;
  }

  /// Executes a read-only operation against current state. Must return
  /// exactly what execute() would return for the same operation and state,
  /// without mutating anything. Only called when is_read_only() is true.
  [[nodiscard]] virtual Bytes execute_read(ByteView operation) const {
    (void)operation;
    return {};
  }

  /// Serializes the full state (checkpoints, state transfer).
  [[nodiscard]] virtual Bytes snapshot() const = 0;

  /// Replaces the state from a snapshot; false if the snapshot is invalid.
  [[nodiscard]] virtual bool restore(ByteView snapshot) = 0;

  /// Digest over the current state (checkpoint agreement).
  [[nodiscard]] virtual Digest state_digest() const = 0;

  // --- incremental snapshot API (streaming state transfer) ---------------
  //
  // The streaming transfer path produces and consumes the snapshot in
  // pieces so neither side materializes it beyond one chunk. The defaults
  // below are compatibility shims over snapshot()/restore(): correct for
  // any app, but with whole-snapshot memory cost. Apps with large state
  // (KvStore) override them.

  /// Emits the snapshot as consecutive pieces of at most `chunk_bytes`
  /// each (the concatenation must equal snapshot()). Default: slices one
  /// materialized snapshot() call.
  virtual void snapshot_chunks(
      std::size_t chunk_bytes,
      const std::function<void(ByteView)>& sink) const {
    const Bytes full = snapshot();
    const std::size_t step = chunk_bytes == 0 ? full.size() + 1 : chunk_bytes;
    for (std::size_t off = 0; off < full.size(); off += step) {
      sink(ByteView{full.data() + off, std::min(step, full.size() - off)});
    }
  }

  /// Starts an incremental restore of `expected_bytes` of snapshot data.
  /// Staged state only: live state keeps serving until apply_end() commits.
  /// Calling apply_begin again discards any previous staging.
  virtual void apply_begin(std::uint64_t expected_bytes) {
    staging_.clear();
    staging_.reserve(static_cast<std::size_t>(expected_bytes));
  }

  /// Feeds the next contiguous snapshot bytes; false rejects the restore
  /// (staging is discarded, live state untouched).
  [[nodiscard]] virtual bool apply_chunk(ByteView data) {
    staging_.insert(staging_.end(), data.begin(), data.end());
    return true;
  }

  /// Atomically commits the staged restore; false leaves live state as it
  /// was. Default shim: restore(<buffered bytes>).
  [[nodiscard]] virtual bool apply_end() {
    Bytes buffered = std::move(staging_);
    staging_.clear();
    return restore(buffered);
  }

  /// Discards staged restore state without touching live state.
  virtual void apply_abort() { staging_.clear(); }

 protected:
  /// Buffer backing the default (whole-snapshot) apply_* shims.
  Bytes staging_;
};

/// Factory so every replica can construct its own instance.
using AppFactory = std::function<std::unique_ptr<Application>()>;

}  // namespace sbft::apps
