// Replicated application interface.
//
// Instances run inside the Execution compartment (SplitBFT) or the replica
// process (PBFT baseline). Implementations must be deterministic: the same
// operation sequence yields the same state and replies on every replica.
#pragma once

#include <functional>
#include <memory>

#include "common/bytes.hpp"

namespace sbft::apps {

class Application {
 public:
  virtual ~Application() = default;

  /// Executes one client operation and returns the reply payload.
  [[nodiscard]] virtual Bytes execute(ByteView operation) = 0;

  /// True iff `operation` never mutates state, making it eligible for the
  /// single-round read fast path (served via execute_read against the
  /// replica's last-executed state, bypassing ordering). Default: nothing
  /// is read-only, so apps opt in per operation.
  [[nodiscard]] virtual bool is_read_only(ByteView operation) const {
    (void)operation;
    return false;
  }

  /// Executes a read-only operation against current state. Must return
  /// exactly what execute() would return for the same operation and state,
  /// without mutating anything. Only called when is_read_only() is true.
  [[nodiscard]] virtual Bytes execute_read(ByteView operation) const {
    (void)operation;
    return {};
  }

  /// Serializes the full state (checkpoints, state transfer).
  [[nodiscard]] virtual Bytes snapshot() const = 0;

  /// Replaces the state from a snapshot; false if the snapshot is invalid.
  [[nodiscard]] virtual bool restore(ByteView snapshot) = 0;

  /// Digest over the current state (checkpoint agreement).
  [[nodiscard]] virtual Digest state_digest() const = 0;
};

/// Factory so every replica can construct its own instance.
using AppFactory = std::function<std::unique_ptr<Application>()>;

}  // namespace sbft::apps
