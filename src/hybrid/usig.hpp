// USIG — Unique Sequential Identifier Generator (MinBFT [58]/CheapBFT [35]).
//
// The minimal trusted subsystem of hybrid BFT protocols: a monotonic
// counter plus a signing key inside a TEE. Binding every message to a fresh
// counter value makes equivocation impossible — AS LONG AS the TEE is
// correct. The `compromise()` hook models the paper's core criticism: a
// single exploited trusted component silently re-issues counter values and
// the 2f+1 protocol loses safety (Table 1, hybrid row).
#pragma once

#include <memory>
#include <optional>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "crypto/keyring.hpp"
#include "net/auth.hpp"
#include "tee/monotonic_counter.hpp"

namespace sbft::hybrid {

/// Unique identifier: (counter value, signature over message digest+counter).
struct UI {
  std::uint64_t counter{0};
  Bytes signature;

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<UI> deserialize(ByteView data);
};

/// The byte string a UI signature covers.
[[nodiscard]] Bytes ui_signing_input(const Digest& message_digest,
                                     std::uint64_t counter);

class Usig {
 public:
  Usig(std::shared_ptr<const crypto::Signer> signer,
       tee::MonotonicCounterService& counters, std::uint64_t counter_id);

  /// Issues the next UI for a message digest (increments the counter).
  [[nodiscard]] UI create(const Digest& message_digest);

  /// Verifies that `ui` is `signer_principal`'s UI for `message_digest`.
  [[nodiscard]] static bool verify(const crypto::Verifier& verifier,
                                   principal::Id signer_principal,
                                   const Digest& message_digest, const UI& ui);

  /// Cache-backed variant: a UI embedded in relayed commits verifies once
  /// per replica, every later check is a cache hit.
  [[nodiscard]] static bool verify(net::VerifyCache& cache,
                                   principal::Id signer_principal,
                                   const Digest& message_digest, const UI& ui);

  /// FAULT INJECTION: marks the TEE as compromised. A compromised USIG
  /// signs any counter value the attacker chooses (rollback/duplication).
  void compromise() noexcept { compromised_ = true; }
  [[nodiscard]] bool compromised() const noexcept { return compromised_; }

  /// Only usable after compromise(): issues a UI with an arbitrary counter.
  [[nodiscard]] UI forge(const Digest& message_digest, std::uint64_t counter);

 private:
  std::shared_ptr<const crypto::Signer> signer_;
  tee::MonotonicCounterService& counters_;
  std::uint64_t counter_id_;
  bool compromised_{false};
};

}  // namespace sbft::hybrid
