// MinBFT-style hybrid replica (Veronese et al. [58]).
//
// 2f+1 replicas; every protocol message carries a USIG-attested counter, so
// a correct primary cannot equivocate and two phases suffice:
//   Prepare(v, m, UI_p)  — primary assigns the order,
//   Commit(v, Prepare, UI_i) — backups countersign,
// execute once f+1 distinct replicas certified the prepare, in primary-
// counter order. Clients are identical to PBFT (HMAC, f+1 matching).
//
// Scope: normal operation + crash tolerance + the compromised-TEE attack —
// what the Table-1 fault-matrix experiment needs. View change is not
// implemented (the hybrid row of Table 1 concerns safety, not primary
// replacement).
#pragma once

#include <map>
#include <memory>
#include <set>

#include "apps/app.hpp"
#include "hybrid/usig.hpp"
#include "net/auth.hpp"
#include "pbft/client_directory.hpp"
#include "pbft/config.hpp"
#include "pbft/messages.hpp"

namespace sbft::hybrid {

/// Message tags (disjoint from pbft::MsgType).
enum class HybridMsg : std::uint32_t {
  Prepare = 60,
  Commit = 61,
};

[[nodiscard]] constexpr std::uint32_t tag(HybridMsg t) noexcept {
  return static_cast<std::uint32_t>(t);
}

struct HybridPrepare {
  View view{0};
  pbft::Request request;
  UI ui;  // primary's USIG identifier
  ReplicaId sender{0};

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<HybridPrepare> deserialize(ByteView data);
  /// Digest the primary's UI covers (view + request).
  [[nodiscard]] Digest ui_digest() const;
};

struct HybridCommit {
  HybridPrepare prepare;  // embedded, so any receiver can verify UI_p
  UI ui;                  // committer's USIG identifier
  ReplicaId sender{0};

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<HybridCommit> deserialize(ByteView data);
  /// Digest the committer's UI covers (the embedded prepare).
  [[nodiscard]] Digest ui_digest() const;
};

/// Hybrid configuration: n = 2f+1.
[[nodiscard]] constexpr pbft::Config hybrid_config(std::uint32_t f) noexcept {
  pbft::Config cfg;
  cfg.f = f;
  cfg.n = 2 * f + 1;
  return cfg;
}

class HybridReplica {
 public:
  HybridReplica(pbft::Config config, ReplicaId id, std::shared_ptr<Usig> usig,
                std::shared_ptr<const crypto::Verifier> verifier,
                pbft::ClientDirectory clients, apps::AppFactory app_factory);

  [[nodiscard]] std::vector<net::Envelope> handle(const net::Envelope& env,
                                                  Micros now);
  [[nodiscard]] std::vector<net::Envelope> tick(Micros now);

  [[nodiscard]] ReplicaId id() const noexcept { return id_; }
  [[nodiscard]] std::uint64_t last_executed_counter() const noexcept {
    return last_executed_;
  }
  [[nodiscard]] const apps::Application& app() const noexcept { return *app_; }
  /// Primary-counter → request digest, for cross-replica agreement checks.
  [[nodiscard]] const std::map<std::uint64_t, Digest>& execution_history()
      const noexcept {
    return executed_digests_;
  }
  [[nodiscard]] std::shared_ptr<Usig> usig() noexcept { return usig_; }
  /// UI-verification cache (hit/miss counters for tests).
  [[nodiscard]] const net::VerifyCache& auth() const noexcept { return auth_; }

 private:
  struct PendingOrder {
    HybridPrepare prepare;
    std::set<ReplicaId> certifiers;
    bool executed{false};
  };

  using Out = std::vector<net::Envelope>;

  void on_request(const net::Envelope& env, Out& out);
  void on_prepare(const net::Envelope& env, Out& out);
  void on_commit(const net::Envelope& env, Out& out);
  void certify(const HybridPrepare& prepare, ReplicaId certifier, Out& out);
  void try_execute(Out& out);
  [[nodiscard]] bool is_primary() const noexcept {
    return config_.primary(view_) == id_;
  }
  [[nodiscard]] net::Envelope to_replica(HybridMsg type, SharedBytes payload,
                                         ReplicaId dst) const;

  pbft::Config config_;
  ReplicaId id_;
  std::shared_ptr<Usig> usig_;
  net::VerifyCache auth_;
  pbft::ClientDirectory clients_;
  std::unique_ptr<apps::Application> app_;

  View view_{0};
  std::uint64_t last_executed_{0};
  /// Primary counter -> agreement state.
  std::map<std::uint64_t, PendingOrder> orders_;
  /// Highest UI counter seen per replica (sequentiality enforcement).
  std::map<ReplicaId, std::uint64_t> last_counter_;

  struct ClientRecord {
    Timestamp last_ts{0};
    Bytes last_result;
    bool has_reply{false};
  };
  std::map<ClientId, ClientRecord> client_records_;
  std::map<std::uint64_t, Digest> executed_digests_;
};

}  // namespace sbft::hybrid
