#include "hybrid/usig.hpp"

#include "common/serde.hpp"

namespace sbft::hybrid {

Bytes UI::serialize() const {
  Writer w;
  w.u64(counter);
  w.bytes(signature);
  return std::move(w).take();
}

std::optional<UI> UI::deserialize(ByteView data) {
  Reader r(data);
  UI ui;
  ui.counter = r.u64();
  ui.signature = r.bytes();
  if (!r.done()) return std::nullopt;
  return ui;
}

Bytes ui_signing_input(const Digest& message_digest, std::uint64_t counter) {
  Writer w;
  w.str("usig-ui");
  w.raw(message_digest.view());
  w.u64(counter);
  return std::move(w).take();
}

Usig::Usig(std::shared_ptr<const crypto::Signer> signer,
           tee::MonotonicCounterService& counters, std::uint64_t counter_id)
    : signer_(std::move(signer)),
      counters_(counters),
      counter_id_(counter_id) {}

UI Usig::create(const Digest& message_digest) {
  UI ui;
  ui.counter = counters_.increment(counter_id_);
  ui.signature = signer_->sign(ui_signing_input(message_digest, ui.counter));
  return ui;
}

bool Usig::verify(const crypto::Verifier& verifier,
                  principal::Id signer_principal, const Digest& message_digest,
                  const UI& ui) {
  return verifier.verify(signer_principal,
                         ui_signing_input(message_digest, ui.counter),
                         ui.signature);
}

bool Usig::verify(net::VerifyCache& cache, principal::Id signer_principal,
                  const Digest& message_digest, const UI& ui) {
  return cache.check_raw(signer_principal,
                         ui_signing_input(message_digest, ui.counter),
                         ui.signature);
}

UI Usig::forge(const Digest& message_digest, std::uint64_t counter) {
  UI ui;
  ui.counter = counter;
  if (!compromised_) {
    // An intact TEE never signs attacker-chosen counters.
    ui.signature.clear();
    return ui;
  }
  ui.signature = signer_->sign(ui_signing_input(message_digest, ui.counter));
  return ui;
}

}  // namespace sbft::hybrid
