#include "hybrid/minbft.hpp"

#include "common/serde.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace sbft::hybrid {

// ------------------------------------------------------------ messages

Bytes HybridPrepare::serialize() const {
  Writer w;
  w.u64(view);
  w.bytes(request.serialize());
  w.bytes(ui.serialize());
  w.u32(sender);
  return std::move(w).take();
}

std::optional<HybridPrepare> HybridPrepare::deserialize(ByteView data) {
  Reader r(data);
  HybridPrepare m;
  m.view = r.u64();
  const Bytes req = r.bytes();
  const Bytes ui_bytes = r.bytes();
  m.sender = r.u32();
  if (!r.done()) return std::nullopt;
  auto request = pbft::Request::deserialize(req);
  auto ui = UI::deserialize(ui_bytes);
  if (!request || !ui) return std::nullopt;
  m.request = std::move(*request);
  m.ui = std::move(*ui);
  return m;
}

Digest HybridPrepare::ui_digest() const {
  Writer w;
  w.u64(view);
  w.bytes(request.serialize());
  return crypto::sha256(w.data());
}

Bytes HybridCommit::serialize() const {
  Writer w;
  w.bytes(prepare.serialize());
  w.bytes(ui.serialize());
  w.u32(sender);
  return std::move(w).take();
}

std::optional<HybridCommit> HybridCommit::deserialize(ByteView data) {
  Reader r(data);
  HybridCommit m;
  const Bytes prep = r.bytes();
  const Bytes ui_bytes = r.bytes();
  m.sender = r.u32();
  if (!r.done()) return std::nullopt;
  auto prepare = HybridPrepare::deserialize(prep);
  auto ui = UI::deserialize(ui_bytes);
  if (!prepare || !ui) return std::nullopt;
  m.prepare = std::move(*prepare);
  m.ui = std::move(*ui);
  return m;
}

Digest HybridCommit::ui_digest() const {
  return crypto::sha256(prepare.serialize());
}

// ------------------------------------------------------------- replica

HybridReplica::HybridReplica(pbft::Config config, ReplicaId id,
                             std::shared_ptr<Usig> usig,
                             std::shared_ptr<const crypto::Verifier> verifier,
                             pbft::ClientDirectory clients,
                             apps::AppFactory app_factory)
    : config_(config),
      id_(id),
      usig_(std::move(usig)),
      auth_(std::move(verifier)),
      clients_(clients),
      app_(app_factory()) {}

net::Envelope HybridReplica::to_replica(HybridMsg type, SharedBytes payload,
                                        ReplicaId dst) const {
  net::Envelope env;
  env.src = principal::hybrid_replica(id_);
  env.dst = principal::hybrid_replica(dst);
  env.type = tag(type);
  env.payload = std::move(payload);  // broadcast copies share one frame
  // Authentication comes from the embedded USIG signatures.
  return env;
}

std::vector<net::Envelope> HybridReplica::handle(const net::Envelope& env,
                                                 Micros now) {
  (void)now;
  Out out;
  if (env.type == pbft::tag(pbft::MsgType::Request)) {
    on_request(env, out);
  } else if (env.type == tag(HybridMsg::Prepare)) {
    on_prepare(env, out);
  } else if (env.type == tag(HybridMsg::Commit)) {
    on_commit(env, out);
  }
  return out;
}

std::vector<net::Envelope> HybridReplica::tick(Micros) { return {}; }

void HybridReplica::on_request(const net::Envelope& env, Out& out) {
  auto req = pbft::Request::deserialize(env.payload);
  if (!req) return;
  const crypto::Key32 key = clients_.auth_key(req->client);
  if (!crypto::hmac_verify(ByteView{key.data(), key.size()},
                           req->auth_input(), req->auth)) {
    return;
  }
  const auto record = client_records_.find(req->client);
  if (record != client_records_.end() &&
      req->timestamp <= record->second.last_ts) {
    return;  // duplicate; replies are re-sent on execution path only
  }
  if (!is_primary()) return;  // backups rely on the primary (no view change)

  HybridPrepare prepare;
  prepare.view = view_;
  prepare.request = std::move(*req);
  prepare.sender = id_;
  prepare.ui = usig_->create(prepare.ui_digest());

  const SharedBytes payload(prepare.serialize());
  for (ReplicaId r = 0; r < config_.n; ++r) {
    if (r == id_) continue;
    out.push_back(to_replica(HybridMsg::Prepare, payload, r));
  }
  last_counter_[id_] = prepare.ui.counter;
  certify(prepare, id_, out);
}

void HybridReplica::on_prepare(const net::Envelope& env, Out& out) {
  auto prepare = HybridPrepare::deserialize(env.payload);
  if (!prepare || prepare->sender != config_.primary(view_) ||
      prepare->view != view_) {
    return;
  }
  // Backups re-check client authentication (never trust the primary).
  const crypto::Key32 key = clients_.auth_key(prepare->request.client);
  if (!crypto::hmac_verify(ByteView{key.data(), key.size()},
                           prepare->request.auth_input(),
                           prepare->request.auth)) {
    return;
  }
  // Verify the primary's UI and counter freshness: a UI counter may be
  // used exactly once (non-equivocation — given an intact TEE).
  if (!Usig::verify(auth_, principal::hybrid_replica(prepare->sender),
                    prepare->ui_digest(), prepare->ui)) {
    return;
  }
  auto& last = last_counter_[prepare->sender];
  if (prepare->ui.counter <= last) return;  // replayed/duplicated counter
  last = prepare->ui.counter;

  HybridCommit commit;
  commit.prepare = *prepare;
  commit.sender = id_;
  commit.ui = usig_->create(commit.ui_digest());

  const SharedBytes payload(commit.serialize());
  for (ReplicaId r = 0; r < config_.n; ++r) {
    if (r == id_) continue;
    out.push_back(to_replica(HybridMsg::Commit, payload, r));
  }
  certify(*prepare, prepare->sender, out);
  certify(*prepare, id_, out);
}

void HybridReplica::on_commit(const net::Envelope& env, Out& out) {
  auto commit = HybridCommit::deserialize(env.payload);
  if (!commit || commit->sender >= config_.n) return;
  const auto& prepare = commit->prepare;
  if (prepare.view != view_ || prepare.sender != config_.primary(view_)) {
    return;
  }
  if (!Usig::verify(auth_, principal::hybrid_replica(prepare.sender),
                    prepare.ui_digest(), prepare.ui)) {
    return;
  }
  if (!Usig::verify(auth_, principal::hybrid_replica(commit->sender),
                    commit->ui_digest(), commit->ui)) {
    return;
  }
  // Accept the primary's counter through this commit too (we may not have
  // seen the prepare directly).
  auto& last_primary = last_counter_[prepare.sender];
  const auto existing = orders_.find(prepare.ui.counter);
  if (existing == orders_.end()) {
    if (prepare.ui.counter <= last_primary &&
        last_primary != 0) {  // counter reuse across different requests
      return;
    }
    last_primary = std::max(last_primary, prepare.ui.counter);
  } else if (existing->second.prepare.ui_digest() != prepare.ui_digest()) {
    return;  // conflicting prepare for the same counter: equivocation
  }
  certify(prepare, commit->sender, out);
  certify(prepare, id_, out);
}

void HybridReplica::certify(const HybridPrepare& prepare, ReplicaId certifier,
                            Out& out) {
  auto& order = orders_[prepare.ui.counter];
  if (order.certifiers.empty()) order.prepare = prepare;
  order.certifiers.insert(certifier);
  try_execute(out);
}

void HybridReplica::try_execute(Out& out) {
  for (;;) {
    const auto it = orders_.find(last_executed_ + 1);
    if (it == orders_.end() || it->second.executed ||
        it->second.certifiers.size() < config_.f + 1) {
      return;
    }
    PendingOrder& order = it->second;
    order.executed = true;
    last_executed_ = order.prepare.ui.counter;

    const pbft::Request& req = order.prepare.request;
    auto& record = client_records_[req.client];
    Bytes result;
    if (req.timestamp > record.last_ts) {
      result = app_->execute(req.payload);
      record.last_ts = req.timestamp;
      record.last_result = result;
      record.has_reply = true;
    } else if (record.has_reply) {
      result = record.last_result;
    } else {
      continue;
    }
    executed_digests_[last_executed_] = req.digest();

    pbft::Reply reply;
    reply.view = view_;
    reply.timestamp = req.timestamp;
    reply.client = req.client;
    reply.sender = id_;
    reply.result = result;
    const crypto::Key32 key = clients_.auth_key(req.client);
    const Digest mac = crypto::hmac_sha256(ByteView{key.data(), key.size()},
                                           reply.auth_input());
    reply.auth = Bytes(mac.bytes.begin(), mac.bytes.end());

    net::Envelope env;
    env.src = principal::hybrid_replica(id_);
    env.dst = principal::client(req.client);
    env.type = pbft::tag(pbft::MsgType::Reply);
    env.payload = reply.serialize();
    out.push_back(std::move(env));
  }
}

}  // namespace sbft::hybrid
